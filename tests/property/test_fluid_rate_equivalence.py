"""Property tests: the indexed max-min allocator matches the reference.

``FluidNetwork._recompute_rates`` was rewritten to iterate a persistent
link->flows index instead of rescanning every link against every flow.
The original implementation is kept as
``FluidNetwork._recompute_rates_reference`` (non-mutating, returning rates
keyed by completion event).  These tests drive random start/finish/cancel
sequences through a network and assert, after every single operation, that
the live rates assigned by the indexed implementation are *bit-identical*
(``==``, not approx) to what the reference allocator computes for the same
flow population -- so any divergence in bottleneck choice, tie-breaking or
residual arithmetic fails immediately.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import FluidNetwork


@st.composite
def churn_plan(draw):
    """Random links plus a start/cancel schedule over them.

    Each flow gets a path over the links, a size, a start time, and
    possibly a cancel delay -- cancels mid-flight are exactly where the
    incremental index must stay in sync with reality.
    """
    num_links = draw(st.integers(min_value=1, max_value=5))
    capacities = [
        draw(st.floats(min_value=0.5, max_value=200.0)) for _ in range(num_links)
    ]
    num_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for _ in range(num_flows):
        path = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_links - 1),
                min_size=1,
                max_size=num_links,
                unique=True,
            )
        )
        size = draw(st.floats(min_value=1.0, max_value=400.0))
        start = draw(st.floats(min_value=0.0, max_value=30.0))
        cancel_after = draw(
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=20.0))
        )
        flows.append((path, size, start, cancel_after))
    return capacities, flows


def assert_rates_match_reference(network: FluidNetwork) -> None:
    """Live assigned rates must equal the reference allocation exactly."""
    expected = network._recompute_rates_reference()
    actual = {done: flow.rate for done, flow in network._flows.items()}
    assert actual == expected


@settings(max_examples=60, deadline=None)
@given(churn_plan())
def test_indexed_allocation_matches_reference(plan):
    capacities, flows = plan
    sim = Simulator()
    network = FluidNetwork(sim)
    for index, capacity in enumerate(capacities):
        network.add_link(f"l{index}", capacity)
    checks = {"count": 0}

    def checked(outcome: str):
        # Runs synchronously right after every start/finish/cancel
        # reallocation the plan produces.
        assert_rates_match_reference(network)
        checks["count"] += 1

    def launch(path, size, start, cancel_after):
        def process():
            yield Timeout(start)
            done = network.transfer([f"l{i}" for i in path], size)
            checked("start")
            if cancel_after is not None:

                def canceller():
                    yield Timeout(cancel_after)
                    if network.cancel(done):
                        checked("cancel")

                sim.spawn(canceller())
            yield done
            checked("finish")

        sim.spawn(process())

    for path, size, start, cancel_after in flows:
        launch(path, size, start, cancel_after)
    sim.run(until=1e7)
    assert checks["count"] >= len(flows)
    # Quiescent network: no flows left (or only cancelled ones), and the
    # reference agrees the allocation over the survivors is empty/static.
    assert_rates_match_reference(network)


@settings(max_examples=40, deadline=None)
@given(churn_plan())
def test_link_occupancy_index_consistent(plan):
    """The persistent link index always mirrors the true flow population."""
    capacities, flows = plan
    sim = Simulator()
    network = FluidNetwork(sim)
    for index, capacity in enumerate(capacities):
        network.add_link(f"l{index}", capacity)

    def verify_index():
        # Rebuild occupancy from scratch and compare with the maintained
        # index and the O(1) counts it serves.
        true_counts: dict[str, int] = {}
        for flow in network._flows.values():
            for link in flow.links:
                true_counts[link] = true_counts.get(link, 0) + 1
        indexed = {link: len(bucket) for link, bucket in network._link_flows.items()}
        assert indexed == true_counts
        for index_ in range(len(capacities)):
            name = f"l{index_}"
            assert network.active_flow_count(name) == true_counts.get(name, 0)
        assert network.active_flow_count() == len(network._flows)

    def launch(path, size, start, cancel_after):
        def process():
            yield Timeout(start)
            done = network.transfer([f"l{i}" for i in path], size)
            verify_index()
            if cancel_after is not None:

                def canceller():
                    yield Timeout(cancel_after)
                    network.cancel(done)
                    verify_index()

                sim.spawn(canceller())
            yield done
            verify_index()

        sim.spawn(process())

    for path, size, start, cancel_after in flows:
        launch(path, size, start, cancel_after)
    sim.run(until=1e7)
    verify_index()
