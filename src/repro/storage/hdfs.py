"""The HDFS-RAID cluster facade.

:class:`HdfsRaidCluster` ties together a topology, an erasure code and a
placement policy, and answers the questions the MapReduce layer asks:
where every block lives, which map tasks are local / remote / degraded for a
given failure set, and how a degraded read should be sourced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId
from repro.storage.degraded import DegradedReadPlanner, SourceSelection
from repro.storage.namenode import BlockMap
from repro.storage.placement import make_placement_policy


@dataclass(frozen=True)
class FailureView:
    """The scheduler's view of one file under a concrete failure set.

    ``lost_blocks`` need degraded tasks; ``available_blocks`` are natives on
    live nodes and become local or remote map tasks.
    """

    failed_nodes: frozenset[int]
    lost_blocks: tuple[BlockId, ...]
    available_blocks: tuple[BlockId, ...]


class HdfsRaidCluster:
    """An erasure-coded storage cluster holding one (logical) file.

    Parameters
    ----------
    topology:
        Cluster layout.
    params:
        Erasure-code parameters ``(n, k)``.
    num_native_blocks:
        Number of native (data) blocks in the stored file.
    placement:
        Placement policy name (``random``, ``round-robin``, ``declustered``).
    rng:
        Random streams used by randomized placement.
    source_selection:
        Degraded-read source policy.
    rack_fault_tolerant:
        Enforce the at-most-``n-k``-blocks-per-rack rule (see
        :mod:`repro.storage.placement`).  Disable for layouts like the
        paper's testbed, where stripes are wider than any rack allows.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        params: CodeParams,
        num_native_blocks: int,
        placement: str,
        rng: RngStreams,
        source_selection: SourceSelection = SourceSelection.RANDOM,
        rack_fault_tolerant: bool = True,
    ) -> None:
        if num_native_blocks <= 0:
            raise ValueError(f"need a positive native block count, got {num_native_blocks}")
        self.topology = topology
        self.params = params
        policy = make_placement_policy(
            placement, topology, params, rack_fault_tolerant
        )
        num_stripes = -(-num_native_blocks // params.k)
        assignment = policy.place_file(num_stripes, rng)
        self.block_map = BlockMap(params, assignment, num_native_blocks)
        self.planner = DegradedReadPlanner(self.block_map, topology, source_selection)

    def failure_view(
        self, failed_nodes: frozenset[int], strict: bool = True
    ) -> FailureView:
        """Split native blocks into lost vs available for this failure set.

        With ``strict`` (the default) raises
        :class:`~repro.faults.errors.DataUnavailableError` if the failure
        exceeds the code's tolerance for any stripe.  Non-strict callers
        (the job tracker, which handles unavailability lazily per task)
        still get the lost/available split; undecodable blocks simply stay
        in ``lost_blocks`` and fail -- or park -- when a task tries to read
        them.
        """
        if strict:
            self.block_map.check_recoverable(failed_nodes)
        lost = tuple(self.block_map.lost_native_blocks(failed_nodes))
        lost_set = set(lost)
        available = tuple(
            block for block in self.block_map.native_blocks() if block not in lost_set
        )
        return FailureView(
            failed_nodes=failed_nodes, lost_blocks=lost, available_blocks=available
        )

    def node_of(self, block: BlockId) -> int:
        """Node holding ``block``."""
        return self.block_map.node_of(block)

    def local_native_blocks(self, node_id: int) -> list[BlockId]:
        """Native blocks stored on ``node_id``."""
        return self.block_map.native_blocks_on_node(node_id)
