"""Unit tests for the mergeable latency digest (repro.obs.digest)."""

import math

import pytest

from repro.obs.digest import GROWTH, LatencyDigest


def exact_nearest_rank(samples, q):
    """Reference nearest-rank quantile over the raw samples."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestAdd:
    def test_counts_and_exact_moments(self):
        digest = LatencyDigest()
        digest.extend([1.0, 2.0, 3.0, 4.0])
        assert digest.count == 4
        assert digest.total == pytest.approx(10.0)
        assert digest.mean == pytest.approx(2.5)
        assert digest.minimum == 1.0
        assert digest.maximum == 4.0

    def test_zero_and_negative_samples_land_in_the_zero_bucket(self):
        digest = LatencyDigest()
        digest.extend([0.0, -0.5, 2.0])
        assert digest.zeros == 2
        assert digest.count == 3
        # The zero bucket dominates p50; the estimate clamps at zero.
        assert digest.quantile(0.5) == 0.0

    def test_non_finite_samples_are_rejected(self):
        digest = LatencyDigest()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError, match="finite"):
                digest.add(bad)
        assert digest.count == 0

    def test_empty_digest_reports_none(self):
        digest = LatencyDigest()
        assert digest.mean is None
        assert digest.quantile(0.5) is None
        assert digest.percentiles() == {
            "count": 0,
            "p50": None,
            "p95": None,
            "p99": None,
        }

    def test_quantile_rejects_out_of_range_q(self):
        digest = LatencyDigest()
        digest.add(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            digest.quantile(1.5)


class TestQuantiles:
    def test_single_sample_quantiles_are_that_sample(self):
        digest = LatencyDigest()
        digest.add(3.7)
        # Clamping to [min, max] makes a one-sample digest exact.
        assert digest.quantile(0.0) == pytest.approx(3.7)
        assert digest.quantile(0.5) == pytest.approx(3.7)
        assert digest.quantile(1.0) == pytest.approx(3.7)

    def test_quantile_error_is_bounded_by_the_bin_width(self):
        samples = [0.01 * i for i in range(1, 1001)]
        digest = LatencyDigest()
        digest.extend(samples)
        # Geometric bins of width GROWTH bound the relative error by
        # sqrt(GROWTH) - 1 (~2.2%); allow the full bin width for slack.
        tolerance = GROWTH - 1.0
        for q in (0.10, 0.50, 0.90, 0.95, 0.99):
            exact = exact_nearest_rank(samples, q)
            estimate = digest.quantile(q)
            assert abs(estimate - exact) / exact <= tolerance

    def test_quantiles_are_monotone_in_q(self):
        digest = LatencyDigest()
        digest.extend([0.5 * i for i in range(1, 200)])
        grid = [i / 20 for i in range(21)]
        estimates = [digest.quantile(q) for q in grid]
        assert estimates == sorted(estimates)

    def test_percentiles_key_set_matches_campaign_contract(self):
        digest = LatencyDigest()
        digest.extend([1.0, 2.0, 3.0])
        block = digest.percentiles()
        assert set(block) == {"count", "p50", "p95", "p99"}
        assert block["count"] == 3
        assert block["p50"] <= block["p95"] <= block["p99"]


class TestMerge:
    def test_merge_is_exact_on_counts(self):
        samples = [0.1 * i for i in range(1, 301)]
        whole = LatencyDigest()
        whole.extend(samples)
        chunks = [samples[0:100], samples[100:200], samples[200:300]]
        merged = LatencyDigest.merged(_digests(chunks))
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.zeros == whole.zeros
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum
        # Quantiles depend only on counts, so they agree exactly.
        for q in (0.05, 0.5, 0.95):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merging_in_canonical_order_is_bit_identical(self):
        chunks = [[0.3 * i + j for i in range(1, 50)] for j in range(4)]
        one = LatencyDigest.merged(_digests(chunks))
        two = LatencyDigest.merged(_digests(chunks))
        assert one.to_dict() == two.to_dict()
        assert one.total == two.total  # exact float equality, not approx

    def test_merge_handles_empty_sides(self):
        digest = LatencyDigest()
        digest.extend([1.0, 2.0])
        empty = LatencyDigest()
        merged = LatencyDigest.merged([empty, digest, empty])
        assert merged.to_dict() == digest.to_dict()


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        digest = LatencyDigest()
        digest.extend([0.0, 0.004, 1.5, 1.5, 88.0])
        clone = LatencyDigest.from_dict(digest.to_dict())
        assert clone == digest
        assert clone.to_dict() == digest.to_dict()

    def test_empty_round_trip(self):
        payload = LatencyDigest().to_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None
        clone = LatencyDigest.from_dict(payload)
        assert clone.count == 0
        assert clone.minimum == math.inf
        assert clone.maximum == -math.inf

    def test_to_dict_bin_keys_are_sorted_strings(self):
        digest = LatencyDigest()
        digest.extend([100.0, 0.001, 7.0])
        keys = list(digest.to_dict()["bins"])
        assert keys == sorted(keys, key=int)
        assert all(isinstance(key, str) for key in keys)


def _digests(chunks):
    out = []
    for chunk in chunks:
        digest = LatencyDigest()
        digest.extend(chunk)
        out.append(digest)
    return out
