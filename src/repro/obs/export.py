"""Exporters: JSONL event log, Chrome trace-event JSON, file helpers.

Three artifact formats come out of an instrumented trial:

* :func:`events_jsonl` -- one spec-valid JSON object per line, one line per
  :class:`~repro.obs.events.ObsEvent` (``NaN``/``Inf`` are emitted as
  ``null``, never as the non-standard tokens ``json.dumps`` produces by
  default);
* :func:`chrome_trace` -- the Chrome trace-event format (the JSON Object
  Format with a ``traceEvents`` array), loadable in Perfetto / DevTools:
  one process row per node, one thread lane per concurrent slot, download
  and process phases as separate duration events, failure detections as
  instant events;
* :func:`write_text` -- shared file-writing helper that creates missing
  parent directories (used by the CLI for every export path).
"""

from __future__ import annotations

import json
import math
import os

from repro.mapreduce.job import TaskKind
from repro.mapreduce.metrics import SimulationResult
from repro.obs.events import ObsEvent

#: Microseconds per simulated second (trace-event timestamps are in us).
_US = 1e6


def sanitize(value):
    """Recursively replace non-finite floats with ``None`` for strict JSON."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


def events_jsonl(events: list[ObsEvent]) -> str:
    """Serialise an event log as JSON Lines (one strict-JSON object each)."""
    lines = [
        json.dumps(sanitize(event.to_dict()), allow_nan=False) for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(result: SimulationResult) -> dict:
    """Build a Chrome trace-event document from a finished trial.

    Layout mirrors the paper's Figure 3/4 slot charts: ``pid`` is the node,
    ``tid`` is a greedily assigned slot lane (so the lane count equals the
    node's peak concurrency), and each task contributes a ``download`` and a
    ``process`` duration event.  Times are simulated seconds scaled to
    microseconds.
    """
    trace_events: list[dict] = []
    lane_busy_until: dict[int, list[float]] = {}
    seen_nodes: set[int] = set()

    tasks = []
    for job_id, job in sorted(result.jobs.items()):
        tasks.extend((job_id, task) for task in job.tasks)
    tasks.sort(key=lambda item: (item[1].slave_id, item[1].launch_time))

    for job_id, task in tasks:
        if not math.isfinite(task.finish_time):
            continue  # killed mid-flight; no closed interval to draw
        node = task.slave_id
        busy = lane_busy_until.setdefault(node, [])
        for lane, busy_until in enumerate(busy):
            if task.launch_time >= busy_until - 1e-9:
                busy[lane] = task.finish_time
                break
        else:
            lane = len(busy)
            busy.append(task.finish_time)
        if node not in seen_nodes:
            seen_nodes.add(node)
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": node,
                    "args": {"name": f"node {node}"},
                }
            )
        kind = "reduce" if task.kind is TaskKind.REDUCE else "map"
        category = task.category.value if task.category else kind
        common = {"pid": node, "tid": lane, "ph": "X"}
        if task.download_time > 0:
            trace_events.append(
                {
                    **common,
                    "name": f"download ({category})",
                    "cat": "download",
                    "ts": task.launch_time * _US,
                    "dur": task.download_time * _US,
                    "args": {"job": job_id, "category": category},
                }
            )
        process_start = task.launch_time + task.download_time
        trace_events.append(
            {
                **common,
                "name": f"{kind} ({category})",
                "cat": "process",
                "ts": process_start * _US,
                "dur": max(task.finish_time - process_start, 0.0) * _US,
                "args": {
                    "job": job_id,
                    "category": category,
                    "attempt": task.attempt,
                    "speculative": task.speculative,
                },
            }
        )

    for record in result.faults.detections:
        trace_events.append(
            {
                "name": f"failure detected: node {record.node}",
                "ph": "i",
                "s": "g",
                "pid": record.node if record.node in seen_nodes else 0,
                "tid": 0,
                "ts": record.detected_at * _US,
                "args": {"failed_at": record.failed_at, "latency": record.latency},
            }
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scheduler": result.scheduler,
            "seed": result.seed,
            "failed_nodes": sorted(result.failed_nodes),
        },
    }


def chrome_trace_json(result: SimulationResult, indent: int | None = None) -> str:
    """:func:`chrome_trace` serialised as strict JSON text."""
    return json.dumps(sanitize(chrome_trace(result)), indent=indent, allow_nan=False)


def write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path``, creating missing parent directories.

    Raises :class:`OSError` on unwritable targets; callers (the CLI) turn
    that into a clean exit instead of a traceback.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text)
