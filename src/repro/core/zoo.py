"""The scheduler zoo: policies beyond the paper's LF/BDF/EDF triple.

ROADMAP item 1 turns the reproduction into a scheduling research platform;
these are the first residents.  Each policy is a normal
:class:`~repro.core.scheduler.Scheduler` subclass registered under its
``name`` -- nothing here is special-cased anywhere else, so the zoo doubles
as a worked example of the third-party policy contract (DESIGN.md §16):

* :class:`RandomScheduler` (``RANDOM``) -- locality-blind baseline that
  picks a random source node per slot; the floor every informed policy
  must beat on locality rate.
* :class:`FifoScheduler` (``FIFO``) -- strict file/scan-order baseline with
  no locality preference, the classic Hadoop FIFO strawman.
* :class:`WorkStealingScheduler` (``STEAL``) -- drain the slave's own queue,
  then steal from the most-backlogged live node (estee idiom).
* :class:`CriticalPathScheduler` (``CPATH``) -- b-level priority: jobs are
  served in order of estimated remaining critical-path work, with BDF's
  degraded pacing inside each job.
* :class:`TaskCloningScheduler` (``CLONE``) -- Xu & Lau-style cloning:
  locality-first, but in the map-phase tail it holds slots back so the
  master's speculative mechanism launches backup clones of stragglers.
* :class:`HeterogeneityAwareScheduler` (``HETERO``) -- weights per-heartbeat
  assignment volume by node speed and admits degraded tasks only on
  at-least-average-speed slaves (Aggarwal et al. direction).

Every policy honours the universal contract enforced by
``tests/property/test_policy_conformance.py``: assign only what the
heartbeat offered, never double-assign a block, never starve degraded
tasks, and stay deterministic for a fixed scenario.
"""

from __future__ import annotations

import math
import random

from repro.core.degraded_first import BasicDegradedFirstScheduler
from repro.core.scheduler import Scheduler, SchedulerContext
from repro.core.tasks import JobTaskState
from repro.mapreduce.job import MapAssignment, MapTaskCategory


def _category_for(context: SchedulerContext, slave_id: int, home_node: int) -> MapTaskCategory:
    """Locality class of a normal task stored on ``home_node`` run on ``slave_id``."""
    if home_node == slave_id:
        return MapTaskCategory.NODE_LOCAL
    topology = context.topology
    if topology.rack_of(home_node) == topology.rack_of(slave_id):
        return MapTaskCategory.RACK_LOCAL
    return MapTaskCategory.REMOTE


class RandomScheduler(Scheduler):
    """Random baseline: pick a uniformly random source per slot, locality-blind.

    For each free slot the policy chooses a random job with pending work,
    then a uniformly random source among that job's non-empty home-node
    queues and (if any) its degraded pool.  The draw uses a private
    fixed-seed :class:`random.Random`, so a given scenario always replays
    the same decision sequence -- random *placement*, deterministic *run*.
    When only degraded work remains it is necessarily drawn, so nothing
    starves.
    """

    name = "RANDOM"

    #: Fixed seed for the private decision stream (determinism contract).
    _SEED = 0x0DF5EED

    #: Sentinel index meaning "draw from the degraded pool".
    _DEGRADED = -1

    def __init__(self, context: SchedulerContext) -> None:
        super().__init__(context)
        self._rng = random.Random(self._SEED)

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        node_ids = sorted(self.context.topology.node_ids())
        while free_map_slots > 0:
            ready = [job for job in jobs if job.has_unassigned_maps()]
            if not ready:
                break
            job = self._rng.choice(ready)
            sources = [n for n in node_ids if job.pending_node_local_count(n) > 0]
            if job.has_unassigned_degraded():
                sources.append(self._DEGRADED)
            pacing = self.pacing_fields(job) if tracing else None
            source = self._rng.choice(sources)
            if source == self._DEGRADED:
                assignment = self._try_degraded(job, slave_id)
            else:
                block = job.pop_from_node(source)
                assignment = self._make_map_assignment(
                    job, slave_id, block, _category_for(self.context, slave_id, source)
                )
            assignments.append(assignment)
            free_map_slots -= 1
            if tracing:
                self.trace_decision(
                    now, slave_id, job_id=job.job_id,
                    action="assign", reason="random-source",
                    category=assignment.category.value,
                    block=str(assignment.block),
                    **pacing,
                )
        return assignments


class FifoScheduler(Scheduler):
    """FIFO baseline: strict job order, fixed node-scan order, no locality.

    Jobs are served strictly in submission order; within a job, normal
    tasks are taken by scanning home nodes in ascending id order --
    wherever the heartbeat came from -- and degraded tasks come last.
    The resulting locality is whatever the placement happens to give,
    which is the point: FIFO quantifies what LF's locality preference
    buys.
    """

    name = "FIFO"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        node_ids = sorted(self.context.topology.node_ids())
        for job in jobs:
            while free_map_slots > 0:
                pacing = self.pacing_fields(job) if tracing else None
                assignment = self._pop_scan_order(job, slave_id, node_ids)
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign", reason="fifo-scan",
                        category=assignment.category.value,
                        block=str(assignment.block),
                        **pacing,
                    )
            if free_map_slots == 0:
                break
        return assignments

    def _pop_scan_order(
        self, job: JobTaskState, slave_id: int, node_ids: list[int]
    ) -> MapAssignment | None:
        if job.has_unassigned_normal():
            for node_id in node_ids:
                block = job.pop_from_node(node_id)
                if block is not None:
                    return self._make_map_assignment(
                        job, slave_id, block,
                        _category_for(self.context, slave_id, node_id),
                    )
        return self._try_degraded(job, slave_id)


class WorkStealingScheduler(Scheduler):
    """Work stealing: drain the own queue, then rob the most-backlogged node.

    The heartbeating slave first takes tasks whose blocks it stores
    itself (its "own queue").  Once that is empty it steals from the
    *victim* with the largest pending node-local backlog among live
    nodes (ties broken by lowest node id), which levels queue lengths
    across the cluster the way work-stealing runtimes do.  Degraded
    tasks are taken last, when no normal work remains anywhere.
    """

    name = "STEAL"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        for job in jobs:
            while free_map_slots > 0:
                pacing = self.pacing_fields(job) if tracing else None
                assignment, reason, victim = self._pop_next(job, slave_id, jobs)
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    fields = dict(
                        action="assign", reason=reason,
                        category=assignment.category.value,
                        block=str(assignment.block),
                    )
                    if victim is not None:
                        fields["victim"] = victim
                        fields["victim_backlog"] = job.pending_node_local_count(victim)
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id, **fields, **pacing
                    )
            if free_map_slots == 0:
                break
        return assignments

    def _pop_next(
        self, job: JobTaskState, slave_id: int, jobs: list[JobTaskState]
    ) -> tuple[MapAssignment | None, str, int | None]:
        block = job.pop_from_node(slave_id)
        if block is not None:
            return (
                self._make_map_assignment(job, slave_id, block, MapTaskCategory.NODE_LOCAL),
                "own-queue",
                None,
            )
        victim = self._pick_victim(job, slave_id)
        if victim is not None:
            block = job.pop_from_node(victim)
            return (
                self._make_map_assignment(
                    job, slave_id, block, _category_for(self.context, slave_id, victim)
                ),
                "steal",
                victim,
            )
        assignment = self._try_degraded(job, slave_id)
        return assignment, "degraded-tail", None

    def _pick_victim(self, job: JobTaskState, slave_id: int) -> int | None:
        """The live node with the deepest pending queue (ties: lowest id)."""
        best_node = None
        best_backlog = 0
        for node_id in sorted(self.context.live_nodes):
            if node_id == slave_id:
                continue
            backlog = job.pending_node_local_count(node_id)
            if backlog > best_backlog:
                best_node, best_backlog = node_id, backlog
        if best_node is not None:
            return best_node
        # Failed nodes keep no queues (their blocks went degraded), but a
        # *blacklisted* live-excluded node may: fall back to any remaining
        # queue so normal work is never stranded.
        for node_id in sorted(self.context.topology.node_ids()):
            if node_id != slave_id and job.pending_node_local_count(node_id) > 0:
                return node_id
        return None


class CriticalPathScheduler(BasicDegradedFirstScheduler):
    """Critical-path priority: serve the job with the most remaining work first.

    A b-level estimate per job -- unlaunched maps at the mean map time,
    plus pending degraded tasks at the expected degraded-read time, plus
    unlaunched reduces at the shuffle tail -- orders jobs by descending
    remaining critical path (ties: submission order).  Inside a job the
    assignment logic is BDF's, so degraded pacing still applies.  With a
    single job this degenerates to BDF exactly.
    """

    name = "CPATH"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        ordered = sorted(
            jobs, key=lambda job: (-self._b_level(job), job.job_id)
        )
        return super().assign_maps(slave_id, free_map_slots, ordered, now)

    def _b_level(self, job: JobTaskState) -> float:
        """Estimated remaining critical-path seconds of ``job``."""
        pending_maps = job.M - job.m
        degraded = job.pending_degraded_count()
        normal = max(pending_maps - degraded, 0)
        reduces = len(job.pending_reduce_tasks)
        return (
            normal * self.context.map_time_mean
            + degraded * (self.context.map_time_mean + self.context.expected_degraded_read_time)
            + reduces * self.context.map_time_mean
        )


class TaskCloningScheduler(Scheduler):
    """Task cloning (Xu & Lau): hold slots back in the tail to feed clones.

    Straggler *cloning* beats straggler *detection* when spare slots are
    cheap: near the end of the map phase, leave capacity free so backup
    copies of still-running tasks can launch immediately.  The master
    already launches speculative attempts into unfilled slots once a
    job's maps are dispatched, so this policy implements cloning by slot
    shaping: while plenty of work pends it fills slots locality-first
    (LF order), but once the remaining pending maps fit inside the live
    slot capacity it assigns only one task per heartbeat, leaving the
    rest of the slots to the master's clone path.  At least one task is
    assigned per heartbeat whenever work pends, so nothing starves even
    with speculation disabled.
    """

    name = "CLONE"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        if free_map_slots > 0 and self._in_tail(jobs):
            free_map_slots = 1
        assignments: list[MapAssignment] = []
        for job in jobs:
            while free_map_slots > 0:
                pacing = self.pacing_fields(job) if tracing else None
                assignment = (
                    self._try_local(job, slave_id)
                    or self._try_remote(job, slave_id)
                    or self._try_degraded(job, slave_id)
                )
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign", reason="clone-tail" if self._tail else "lf-order",
                        category=assignment.category.value,
                        block=str(assignment.block),
                        **pacing,
                    )
            if free_map_slots == 0:
                break
        return assignments

    def _in_tail(self, jobs: list[JobTaskState]) -> bool:
        pending = sum(
            job.pending_degraded_count()
            + (job.M - job.M_d) - (job.m - job.m_d)
            for job in jobs
        )
        capacity = sum(
            self.context.map_slots_of(node_id) for node_id in self.context.live_nodes
        )
        self._tail = 0 < pending <= max(capacity, 1)
        return self._tail

    #: Whether the last heartbeat was served in tail (clone-feeding) mode.
    _tail = False


class HeterogeneityAwareScheduler(BasicDegradedFirstScheduler):
    """Heterogeneity-aware: assignment volume and degraded admission by speed.

    Two speed-informed rules on top of BDF (Aggarwal et al. direction):
    a slave is offered ``free * speed / mean_speed`` slots per heartbeat
    (at least one), so slow nodes accumulate less queued work; and
    degraded tasks -- whose reconstruction adds compute on top of the
    network fan-in -- are admitted only on slaves at or above the mean
    live speed.  When only degraded work remains the speed gate lifts,
    so degraded tasks never starve on a cluster of stragglers.
    """

    name = "HETERO"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        if free_map_slots > 0:
            speed = self.context.speed_factor(slave_id)
            mean = self.context.mean_speed_factor()
            share = free_map_slots if mean <= 0 else free_map_slots * speed / mean
            free_map_slots = max(1, min(free_map_slots, math.floor(share + 0.5)))
        return super().assign_maps(slave_id, free_map_slots, jobs, now)

    def _degraded_guards(self, job: JobTaskState, slave_id: int, now: float) -> bool:
        del now
        speed_ok = (
            self.context.speed_factor(slave_id) + 1e-12
            >= self.context.mean_speed_factor()
        )
        if self.bus is not None:
            self.last_guard_trace = {
                "speed": self.context.speed_factor(slave_id),
                "mean_speed": self.context.mean_speed_factor(),
                "speed_ok": speed_ok,
                "rejected_by": None if speed_ok else "speed",
            }
        return speed_ok or not job.has_unassigned_normal()


#: All zoo policies, for registration.
ZOO_SCHEDULERS = (
    RandomScheduler,
    FifoScheduler,
    WorkStealingScheduler,
    CriticalPathScheduler,
    TaskCloningScheduler,
    HeterogeneityAwareScheduler,
)
