"""Static HTML dashboards and regression diffing over analysis documents.

Two JSON document shapes flow through this module, each tagged with its
schema string:

* the **run summary** (``repro.run-summary/v1``) produced by
  :meth:`repro.obs.analyze.RunAnalysis.to_dict`;
* the **campaign report** (``repro.reliability-campaign/v1``) produced by
  :func:`repro.experiments.reliability.run_campaign`.

:func:`report_html` renders either into a fully self-contained HTML page --
inline CSS, inline markup, zero external assets -- so a dashboard written
to CI artifacts renders anywhere, offline, forever.  The styling follows
the repository's chart conventions: CSS custom properties with light and
dark scopes (OS preference *and* an explicit ``data-theme`` override),
thin marks with surface-colored gaps between stacked segments, and text
that always wears ink tokens rather than series colors.

:func:`diff_reports` compares two documents of the same schema metric by
metric with a configurable relative threshold (default 10%) and per-metric
overrides.  Every metric carries a direction: for latencies and makespans
*lower* is better; for durability and completed-job counts *higher* is.
``repro obs diff`` turns :func:`has_regression` into exit code 4.
"""

from __future__ import annotations

import html
import math

from repro.obs.analyze import RUN_SUMMARY_SCHEMA
from repro.obs.digest import LatencyDigest

#: Schema tag of reliability-campaign reports (kept as a literal so the
#: analysis layer never imports the campaign driver).
CAMPAIGN_SCHEMA = "repro.reliability-campaign/v1"

#: Schema tag of policy-tournament reports (repro.experiments.tournament).
TOURNAMENT_SCHEMA = "repro.tournament-report/v1"

#: Default relative-change threshold for ``repro obs diff``.
DEFAULT_THRESHOLD = 0.10

#: Relative changes below this are float noise, never a regression.
_NOISE = 1e-9

#: Map categories in dashboard order (mirrors repro.obs.analyze).
_CATEGORIES = ("node-local", "rack-local", "remote", "degraded")


# -- regression diffing --------------------------------------------------------


def _digest_percentiles(payload: dict | None) -> dict:
    """Percentiles of a serialised digest (empty block when absent)."""
    if not payload:
        return {"count": 0, "p50": None, "p95": None, "p99": None}
    return LatencyDigest.from_dict(payload).percentiles()


def _run_metrics(summary: dict) -> dict[str, dict]:
    """The diffable metric set of one run summary."""
    breakdown = summary.get("breakdown", {})
    degraded = breakdown.get("degraded", {})
    map_total = sum(
        breakdown.get(label, {}).get("total_s", 0.0) for label in _CATEGORIES
    )
    tails = _digest_percentiles(summary.get("digests", {}).get("degraded_read"))
    return {
        "makespan_s": {"value": summary.get("makespan_s"), "direction": "lower"},
        "map_total_s": {"value": map_total, "direction": "lower"},
        "degraded_read_s": {"value": degraded.get("read_s", 0.0), "direction": "lower"},
        "degraded_tasks": {"value": degraded.get("tasks", 0), "direction": "lower"},
        "degraded_p50_s": {"value": tails["p50"], "direction": "lower"},
        "degraded_p99_s": {"value": tails["p99"], "direction": "lower"},
    }


def _campaign_metrics(report: dict) -> dict[str, dict]:
    """The diffable metric set of one campaign report."""
    availability = report.get("availability", {})
    backlog = availability.get("backlog", {})
    metrics: dict[str, dict] = {
        "durability": {"value": availability.get("durability"), "direction": "higher"},
        "backlog_peak": {"value": backlog.get("peak"), "direction": "lower"},
    }
    for policy, row in report.get("policies", {}).items():
        latency = row.get("degraded_read_seconds", {})
        jobs = row.get("jobs", {})
        metrics[f"{policy}:degraded_p50_s"] = {
            "value": latency.get("p50"),
            "direction": "lower",
        }
        metrics[f"{policy}:degraded_p99_s"] = {
            "value": latency.get("p99"),
            "direction": "lower",
        }
        metrics[f"{policy}:sojourn_mean_s"] = {
            "value": row.get("sojourn", {}).get("mean"),
            "direction": "lower",
        }
        metrics[f"{policy}:jobs_completed"] = {
            "value": jobs.get("completed"),
            "direction": "higher",
        }
        metrics[f"{policy}:data_loss_windows"] = {
            "value": row.get("data_loss_windows", 0),
            "direction": "lower",
        }
    return metrics


def _tournament_metrics(report: dict) -> dict[str, dict]:
    """The diffable metric set of one tournament report."""
    metrics: dict[str, dict] = {}
    for policy, row in report.get("policies", {}).items():
        makespan = row.get("makespan_seconds", {})
        degraded = row.get("degraded_read_seconds", {})
        jobs = row.get("jobs", {})
        metrics[f"{policy}:makespan_mean_s"] = {
            "value": row.get("makespan_mean_s"),
            "direction": "lower",
        }
        metrics[f"{policy}:makespan_p50_s"] = {
            "value": makespan.get("p50"),
            "direction": "lower",
        }
        metrics[f"{policy}:degraded_p99_s"] = {
            "value": degraded.get("p99"),
            "direction": "lower",
        }
        metrics[f"{policy}:jobs_completed"] = {
            "value": jobs.get("completed"),
            "direction": "higher",
        }
    return metrics


def _metrics_of(document: dict) -> dict[str, dict]:
    schema = document.get("schema")
    if schema == RUN_SUMMARY_SCHEMA:
        return _run_metrics(document)
    if schema == CAMPAIGN_SCHEMA:
        return _campaign_metrics(document)
    if schema == TOURNAMENT_SCHEMA:
        return _tournament_metrics(document)
    raise ValueError(f"unrecognised analysis document schema: {schema!r}")


def diff_reports(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
    overrides: dict[str, float] | None = None,
) -> list[dict]:
    """Metric-by-metric comparison of two same-schema documents.

    Each row carries ``metric``, both values, the signed absolute ``delta``
    and relative ``change`` (None when the baseline is 0), the metric's
    ``direction``, the ``threshold`` applied, and a ``status``:

    * ``"regression"`` -- moved the *bad* way by more than the threshold;
    * ``"improved"`` -- moved the *good* way by more than the threshold;
    * ``"ok"`` -- within the threshold;
    * ``"n/a"`` -- either side missing (e.g. no degraded reads occurred).

    ``overrides`` maps metric names to per-metric thresholds.
    """
    if baseline.get("schema") != candidate.get("schema"):
        raise ValueError(
            f"cannot diff documents of different schemas: "
            f"{baseline.get('schema')!r} vs {candidate.get('schema')!r}"
        )
    overrides = overrides or {}
    base_metrics = _metrics_of(baseline)
    cand_metrics = _metrics_of(candidate)
    rows: list[dict] = []
    for name in sorted(base_metrics.keys() | cand_metrics.keys()):
        direction = (base_metrics.get(name) or cand_metrics[name])["direction"]
        limit = overrides.get(name, threshold)
        before = (base_metrics.get(name) or {}).get("value")
        after = (cand_metrics.get(name) or {}).get("value")
        row = {
            "metric": name,
            "baseline": before,
            "candidate": after,
            "direction": direction,
            "threshold": limit,
            "delta": None,
            "change": None,
            "status": "n/a",
        }
        if before is not None and after is not None:
            delta = after - before
            row["delta"] = delta
            change = delta / abs(before) if before else None
            row["change"] = change
            # The bad direction is "up" for lower-is-better metrics and
            # "down" for higher-is-better ones.
            bad = delta if direction == "lower" else -delta
            if abs(delta) <= _NOISE:
                row["status"] = "ok"
            elif before == 0:
                row["status"] = "regression" if bad > 0 else "improved"
            elif bad > limit * abs(before):
                row["status"] = "regression"
            elif bad < -limit * abs(before):
                row["status"] = "improved"
            else:
                row["status"] = "ok"
        rows.append(row)
    return rows


def has_regression(rows: list[dict]) -> bool:
    """True when any diff row regressed past its threshold."""
    return any(row["status"] == "regression" for row in rows)


def render_diff_text(rows: list[dict]) -> str:
    """The ``repro obs diff`` table, one metric per line."""
    lines = [
        f"{'metric':<28} {'baseline':>12} {'candidate':>12} "
        f"{'change':>9}  status"
    ]
    for row in rows:
        change = (
            f"{100.0 * row['change']:+8.1f}%" if row["change"] is not None else "      n/a"
        )
        lines.append(
            f"{row['metric']:<28} {_num(row['baseline']):>12} "
            f"{_num(row['candidate']):>12} {change:>9}  {row['status']}"
        )
    regressions = sum(1 for row in rows if row["status"] == "regression")
    lines.append(
        f"-- {len(rows)} metric(s), {regressions} regression(s)"
        + ("" if regressions else "; within thresholds")
    )
    return "\n".join(lines)


def _num(value) -> str:
    """Compact numeric cell: ints verbatim, floats to 3 significant-ish."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if not math.isfinite(value):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


# -- HTML rendering ------------------------------------------------------------

# Light/dark token pairs straight from the house chart palette; declared
# under both the media query and the data-theme scopes so an explicit
# toggle beats the OS setting either way.
_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100;
  --status-good: #006300; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500;
    --status-good: #0ca30c; --status-critical: #d03b3b;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --gridline: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500;
  --status-good: #0ca30c; --status-critical: #d03b3b;
}
.viz-root {
  margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root main { max-width: 920px; margin: 0 auto; }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 2px; }
h2 { font-size: 14px; font-weight: 600; margin: 0 0 10px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.hero { font-size: 48px; font-weight: 600; line-height: 1.1; }
.hero-label { color: var(--text-secondary); margin-bottom: 2px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin-bottom: 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 16px; margin-bottom: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 128px; flex: 1;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 22px; font-weight: 600; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 5px 10px 5px 0; }
td.n, th.n { text-align: right; font-variant-numeric: tabular-nums; }
th {
  color: var(--text-muted); font-size: 12px; font-weight: 500;
  border-bottom: 1px solid var(--baseline);
}
tr + tr td { border-top: 1px solid var(--gridline); }
.bar-row { display: flex; align-items: center; margin: 6px 0; }
.bar-label { width: 110px; color: var(--text-secondary); flex: none; }
.bar-track { flex: 1; display: flex; }
.bar-seg { height: 18px; }
.bar-seg + .bar-seg { margin-left: 2px; }
.bar-seg.last { border-radius: 0 4px 4px 0; }
.bar-value {
  margin-left: 8px; color: var(--text-secondary);
  font-variant-numeric: tabular-nums; white-space: nowrap;
}
.legend {
  display: flex; gap: 16px; color: var(--text-secondary);
  font-size: 12px; margin-bottom: 8px;
}
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
.ok { color: var(--status-good); }
.bad { color: var(--status-critical); font-weight: 600; }
.muted { color: var(--text-muted); }
footer { color: var(--text-muted); font-size: 12px; margin-top: 20px; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _page(title: str, body: str) -> str:
    """Wrap rendered sections into the self-contained document."""
    return (
        "<!doctype html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n"
        '</head>\n<body class="viz-root">\n<main>\n'
        f"{body}\n"
        "<footer>repro obs report &mdash; generated offline, no external "
        "assets; simulated-time quantities only.</footer>\n"
        "</main>\n</body>\n</html>\n"
    )


def _tile(label: str, value: str) -> str:
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
    )


def _seconds(value) -> str:
    return "n/a" if value is None else f"{value:,.1f} s"


def _stacked_bars(rows: list[tuple[str, list[tuple[str, float, str]]]]) -> str:
    """Horizontal stacked bars: (label, [(series, value, css-color)]) rows.

    Segment widths share one scale (the widest row spans the track); 2px
    surface gaps separate segments; the data-end corner is rounded.  Values
    ride the bar tip; per-segment values live in the native tooltip and the
    accompanying table.
    """
    peak = max(
        (sum(value for _name, value, _color in segments) for _label, segments in rows),
        default=0.0,
    )
    if peak <= 0:
        return '<p class="muted">no samples</p>'
    parts = []
    for label, segments in rows:
        total = sum(value for _name, value, _color in segments)
        visible = [seg for seg in segments if seg[1] > 0]
        cells = []
        for index, (name, value, color) in enumerate(visible):
            width = 100.0 * value / peak
            last = " last" if index == len(visible) - 1 else ""
            cells.append(
                f'<div class="bar-seg{last}" '
                f'style="width:{width:.2f}%;background:var({color})" '
                f'title="{_esc(name)}: {value:,.1f} s"></div>'
            )
        parts.append(
            '<div class="bar-row">'
            f'<div class="bar-label">{_esc(label)}</div>'
            f'<div class="bar-track">{"".join(cells)}</div>'
            f'<div class="bar-value">{total:,.1f} s</div>'
            "</div>"
        )
    return "".join(parts)


def _legend(entries: list[tuple[str, str]]) -> str:
    spans = [
        f'<span><span class="swatch" style="background:var({color})"></span>'
        f"{_esc(label)}</span>"
        for label, color in entries
    ]
    return f'<div class="legend">{"".join(spans)}</div>'


def _percentile_table(digests: dict) -> str:
    rows = []
    for name, payload in sorted(digests.items()):
        p = _digest_percentiles(payload)
        rows.append(
            f"<tr><td>{_esc(name)}</td><td class=n>{p['count']:,}</td>"
            f"<td class=n>{_esc(_num(p['p50']))}</td>"
            f"<td class=n>{_esc(_num(p['p95']))}</td>"
            f"<td class=n>{_esc(_num(p['p99']))}</td></tr>"
        )
    return (
        "<table><thead><tr><th>digest</th><th class=n>n</th>"
        "<th class=n>p50 (s)</th><th class=n>p95 (s)</th><th class=n>p99 (s)</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def run_report_html(summary: dict) -> str:
    """Render one run summary as a self-contained dashboard page."""
    if summary.get("schema") != RUN_SUMMARY_SCHEMA:
        raise ValueError(f"not a run summary: schema {summary.get('schema')!r}")
    scheduler = summary.get("scheduler", "?")
    seed = summary.get("seed")
    breakdown = summary.get("breakdown", {})
    audit = summary.get("audit")
    path = summary.get("critical_path", {})
    sections = []

    subtitle = f"{scheduler} scheduler"
    if seed is not None:
        subtitle += f", seed {seed}"
    failed = summary.get("failed_nodes") or []
    if failed:
        subtitle += f", failed node(s) {', '.join(str(n) for n in failed)}"
    sections.append(
        f"<h1>Run analysis</h1><p class=subtitle>{_esc(subtitle)}</p>"
        '<div class="card"><div class="hero-label">Makespan</div>'
        f'<div class="hero">{_esc(_seconds(summary.get("makespan_s")))}</div></div>'
    )

    degraded = breakdown.get("degraded", {})
    tiles = [
        _tile("Jobs", f"{len(summary.get('jobs', {})):,}"),
        _tile("Tasks", f"{summary.get('tasks', 0):,}"),
        _tile("Degraded tasks", f"{degraded.get('tasks', 0):,}"),
    ]
    if audit:
        tiles.append(_tile("Locality rate", _rate_text(audit.get("locality_rate"))))
        tiles.append(_tile("Degraded rate", _rate_text(audit.get("degraded_rate"))))
    sections.append(f'<div class="tiles">{"".join(tiles)}</div>')

    bar_rows = []
    table_rows = []
    for label in (*_CATEGORIES, "reduce"):
        row = breakdown.get(label)
        if not row or not row.get("tasks"):
            continue
        bar_rows.append(
            (
                label,
                [
                    ("read", row.get("read_s", 0.0), "--series-1"),
                    ("compute", row.get("compute_s", 0.0), "--series-2"),
                ],
            )
        )
        mean = row.get("mean_s")
        table_rows.append(
            f"<tr><td>{_esc(label)}</td><td class=n>{row['tasks']:,}</td>"
            f"<td class=n>{row['read_s']:,.1f}</td>"
            f"<td class=n>{row['compute_s']:,.1f}</td>"
            f"<td class=n>{row['total_s']:,.1f}</td>"
            f"<td class=n>{_esc(_num(mean))}</td></tr>"
        )
    sections.append(
        '<div class="card"><h2>Task-time breakdown</h2>'
        + _legend([("read", "--series-1"), ("compute", "--series-2")])
        + _stacked_bars(bar_rows)
        + "<table><thead><tr><th>category</th><th class=n>tasks</th>"
        "<th class=n>read (s)</th><th class=n>compute (s)</th>"
        "<th class=n>total (s)</th><th class=n>mean (s)</th></tr></thead>"
        f"<tbody>{''.join(table_rows)}</tbody></table></div>"
    )

    steps = path.get("steps", [])
    coverage = path.get("coverage", 0.0)
    step_rows = [
        f"<tr><td>{_esc(step.get('edge'))}</td><td class=n>{step.get('job')}</td>"
        f"<td>{_esc(step.get('kind'))}</td>"
        f"<td>{_esc(step.get('category') or '-')}</td>"
        f"<td class=n>{step.get('node')}</td>"
        f"<td class=n>{step.get('launch', 0.0):,.1f}</td>"
        f"<td class=n>{step.get('finish', 0.0):,.1f}</td>"
        f"<td class=n>{step.get('read_s', 0.0):,.1f}</td>"
        f"<td class=n>{step.get('compute_s', 0.0):,.1f}</td></tr>"
        for step in steps
    ]
    sections.append(
        f'<div class="card"><h2>Critical path &mdash; {len(steps)} step(s), '
        f"{100.0 * coverage:.0f}% of makespan</h2>"
        "<table><thead><tr><th>edge</th><th class=n>job</th><th>kind</th>"
        "<th>category</th><th class=n>node</th><th class=n>launch</th>"
        "<th class=n>finish</th><th class=n>read (s)</th>"
        "<th class=n>compute (s)</th></tr></thead>"
        f"<tbody>{''.join(step_rows)}</tbody></table></div>"
    )

    if audit:
        assigned = audit.get("assigned", {})
        skipped = audit.get("skipped", {})
        guard = audit.get("guard", {})
        audit_rows = [
            f"<tr><td>assign</td><td>{_esc(category)}</td>"
            f"<td class=n>{count:,}</td></tr>"
            for category, count in assigned.items()
            if count
        ] + [
            f"<tr><td>skip</td><td>{_esc(reason)}</td><td class=n>{count:,}</td></tr>"
            for reason, count in sorted(skipped.items())
        ]
        sections.append(
            f'<div class="card"><h2>Scheduler decisions '
            f"({_esc(audit.get('scheduler', '?'))})</h2>"
            "<table><thead><tr><th>action</th><th>category / reason</th>"
            f"<th class=n>count</th></tr></thead><tbody>{''.join(audit_rows)}"
            "</tbody></table>"
            f'<p class="muted">EDF guard: {guard.get("admitted", 0)} admitted, '
            f"{guard.get('slave_rejected', 0)} slave-rejected, "
            f"{guard.get('rack_rejected', 0)} rack-rejected; "
            f"{audit.get('pacing_deferrals', 0)} pacing deferral(s).</p></div>"
        )

    digests = summary.get("digests", {})
    if digests:
        sections.append(
            '<div class="card"><h2>Latency digests</h2>'
            + _percentile_table(digests)
            + "</div>"
        )

    counts = summary.get("event_counts", {})
    if counts:
        count_rows = [
            f"<tr><td>{_esc(kind)}</td><td class=n>{count:,}</td></tr>"
            for kind, count in sorted(counts.items())
        ]
        sections.append(
            '<div class="card"><h2>Events by kind</h2>'
            "<table><thead><tr><th>kind</th><th class=n>count</th></tr></thead>"
            f"<tbody>{''.join(count_rows)}</tbody></table></div>"
        )

    return _page(f"Run analysis — {scheduler}", "".join(sections))


def _rate_text(value) -> str:
    return "n/a" if value is None else f"{100.0 * value:.0f}%"


def campaign_report_html(report: dict) -> str:
    """Render one reliability-campaign report as a dashboard page."""
    if report.get("schema") != CAMPAIGN_SCHEMA:
        raise ValueError(f"not a campaign report: schema {report.get('schema')!r}")
    config = report.get("config", {})
    availability = report.get("availability", {})
    backlog = availability.get("backlog", {})
    cluster = config.get("cluster", {})
    sections = []

    year = 365.25 * 24 * 3600.0
    horizon_years = config.get("horizon", 0.0) / year
    subtitle = (
        f"{config.get('model', {}).get('kind', '?')} failures, "
        f"{config.get('arrivals', {}).get('kind', '?')} arrivals, "
        f"{horizon_years:.2f} simulated year(s) × "
        f"{config.get('iterations', '?')} iteration(s), seed {config.get('seed')}"
    )
    durability = availability.get("durability")
    sections.append(
        f"<h1>Reliability campaign</h1><p class=subtitle>{_esc(subtitle)}</p>"
        '<div class="card"><div class="hero-label">Durability</div>'
        '<div class="hero">'
        + (_esc(f"{durability:.9f}") if durability is not None else "n/a")
        + "</div></div>"
    )

    if availability.get("censored"):
        bound = availability.get("mttdl_lower_bound")
        mttdl = f"≥ {bound / year:.2f} yr" if bound else "n/a"
    else:
        mttdl = (
            f"{availability['mttdl'] / year:.3f} yr"
            if availability.get("mttdl")
            else "n/a"
        )
    tiles = [
        _tile("MTTDL", mttdl),
        _tile("Loss events", f"{availability.get('loss_events', 0):,}"),
        _tile("Blocks repaired", f"{availability.get('blocks_repaired', 0):,}"),
        _tile("Backlog peak", f"{backlog.get('peak', 0):,}"),
        _tile(
            "Backlog",
            ("bounded" if backlog.get("bounded") else "UNBOUNDED")
            + (", drained" if backlog.get("drained") else ""),
        ),
    ]
    sections.append(f'<div class="tiles">{"".join(tiles)}</div>')

    policies = report.get("policies", {})
    bar_rows = []
    policy_rows = []
    for policy, row in policies.items():
        latency = row.get("degraded_read_seconds", {})
        jobs = row.get("jobs", {})
        sojourn = row.get("sojourn", {})
        p99 = latency.get("p99")
        if p99 is not None:
            bar_rows.append((policy, [("degraded p99", p99, "--series-1")]))
        stability = row.get("stability", "?")
        stability_cell = (
            f'<span class="bad">{_esc(stability)}</span>'
            if stability == "saturated"
            else f'<span class="ok">{_esc(stability)}</span>'
            if stability == "stable"
            else _esc(stability)
        )
        policy_rows.append(
            f"<tr><td>{_esc(policy)}</td>"
            f"<td class=n>{latency.get('count', 0):,}</td>"
            f"<td class=n>{_esc(_num(latency.get('p50')))}</td>"
            f"<td class=n>{_esc(_num(latency.get('p95')))}</td>"
            f"<td class=n>{_esc(_num(p99))}</td>"
            f"<td class=n>{jobs.get('completed', 0):,}/{jobs.get('submitted', 0):,}</td>"
            f"<td class=n>{_esc(_num(sojourn.get('mean')))}</td>"
            f"<td>{stability_cell}</td>"
            f"<td class=n>{row.get('data_loss_windows', 0):,}</td></tr>"
        )
    sections.append(
        '<div class="card"><h2>Degraded-read p99 by policy</h2>'
        + _stacked_bars(bar_rows)
        + "<table><thead><tr><th>policy</th><th class=n>reads</th>"
        "<th class=n>p50 (s)</th><th class=n>p95 (s)</th><th class=n>p99 (s)</th>"
        "<th class=n>jobs</th><th class=n>sojourn mean (s)</th>"
        "<th>stability</th><th class=n>loss windows</th></tr></thead>"
        f"<tbody>{''.join(policy_rows)}</tbody></table></div>"
    )

    telemetry_sections = []
    for policy, row in policies.items():
        telemetry = row.get("telemetry")
        if telemetry:
            telemetry_sections.append(
                f"<h2>{_esc(policy)} digests</h2>" + _percentile_table(telemetry)
            )
    if telemetry_sections:
        sections.append('<div class="card">' + "".join(telemetry_sections) + "</div>")

    windows = report.get("windows", [])
    if windows:
        window_rows = [
            f"<tr><td class=n>{index}</td>"
            f"<td class=n>{window.get('start', 0.0):,.0f}</td>"
            f"<td class=n>{window.get('duration', 0.0):,.0f}</td>"
            f"<td class=n>{window.get('events', 0):,}</td>"
            f"<td class=n>{window.get('jobs', 0):,}</td></tr>"
            for index, window in enumerate(windows)
        ]
        sections.append(
            '<div class="card"><h2>Windows</h2>'
            "<table><thead><tr><th class=n>#</th><th class=n>start (s)</th>"
            "<th class=n>duration (s)</th><th class=n>fault events</th>"
            "<th class=n>jobs</th></tr></thead>"
            f"<tbody>{''.join(window_rows)}</tbody></table></div>"
        )

    cluster_note = (
        f"{cluster.get('num_nodes', '?')} nodes, "
        f"({cluster.get('code', ['?', '?'])[0]},{cluster.get('code', ['?', '?'])[1]}) "
        f"code, {cluster.get('num_stripes', '?')} stripes"
    )
    sections.append(f'<p class="muted">{_esc(cluster_note)}</p>')
    return _page("Reliability campaign", "".join(sections))


def tournament_report_html(report: dict) -> str:
    """Render one policy-tournament report as a leaderboard dashboard."""
    if report.get("schema") != TOURNAMENT_SCHEMA:
        raise ValueError(f"not a tournament report: schema {report.get('schema')!r}")
    spec = report.get("tournament", {})
    accounting = report.get("accounting", {})
    leaderboard = report.get("leaderboard", [])
    policies = report.get("policies", {})
    sections = []

    scenario_names = [entry.get("name", "?") for entry in spec.get("scenarios", [])]
    subtitle = (
        f"{len(spec.get('policies', []))} policies × "
        f"{len(scenario_names)} scenario(s) × {len(spec.get('seeds', []))} seed(s)"
    )
    winner = leaderboard[0]["policy"] if leaderboard else "n/a"
    sections.append(
        f"<h1>Policy tournament</h1><p class=subtitle>{_esc(subtitle)}</p>"
        '<div class="card"><div class="hero-label">Winner (lowest mean makespan)</div>'
        f'<div class="hero">{_esc(winner)}</div></div>'
    )

    tiles = [
        _tile("Trials", f"{accounting.get('submitted', 0):,}"),
        _tile("Done", f"{accounting.get('done', 0):,}"),
        _tile("Failed", f"{accounting.get('failed', 0):,}"),
        _tile("Quarantined", f"{accounting.get('quarantined', 0):,}"),
    ]
    sections.append(f'<div class="tiles">{"".join(tiles)}</div>')

    bar_rows = []
    ranking_rows = []
    for entry in leaderboard:
        mean = entry.get("makespan_mean_s")
        if mean is not None:
            bar_rows.append(
                (entry["policy"], [("makespan mean", mean, "--series-1")])
            )
        ranking_rows.append(
            f"<tr><td class=n>{entry.get('rank')}</td>"
            f"<td>{_esc(entry.get('policy', '?'))}</td>"
            f"<td class=n>{_esc(_num(mean))}</td>"
            f"<td class=n>{_esc(_num(entry.get('makespan_p50_s')))}</td>"
            f"<td class=n>{_esc(_num(entry.get('degraded_p99_s')))}</td>"
            f"<td class=n>{entry.get('jobs_completed', 0):,}</td>"
            f"<td class=n>{entry.get('trials_done', 0):,}</td>"
            f"<td class=n>{entry.get('refused', 0):,}</td></tr>"
        )
    sections.append(
        '<div class="card"><h2>Leaderboard</h2>'
        + _stacked_bars(bar_rows)
        + "<table><thead><tr><th class=n>rank</th><th>policy</th>"
        "<th class=n>makespan mean (s)</th><th class=n>makespan p50 (s)</th>"
        "<th class=n>degraded p99 (s)</th><th class=n>jobs done</th>"
        "<th class=n>trials</th><th class=n>refused</th></tr></thead>"
        f"<tbody>{''.join(ranking_rows)}</tbody></table></div>"
    )

    telemetry_sections = []
    for policy in sorted(policies):
        telemetry = policies[policy].get("telemetry")
        if telemetry:
            telemetry_sections.append(
                f"<h2>{_esc(policy)} digests</h2>" + _percentile_table(telemetry)
            )
    if telemetry_sections:
        sections.append('<div class="card">' + "".join(telemetry_sections) + "</div>")

    failures = report.get("failures", [])
    if failures:
        failure_rows = [
            f"<tr><td class=n>{failure.get('index')}</td>"
            f"<td>{_esc(failure.get('kind', '?'))}</td>"
            f"<td class=n>{failure.get('attempts', 0)}</td>"
            f"<td>{_esc(failure.get('message', ''))}</td></tr>"
            for failure in failures
        ]
        sections.append(
            '<div class="card"><h2>Failures</h2>'
            "<table><thead><tr><th class=n>trial</th><th>kind</th>"
            "<th class=n>attempts</th><th>message</th></tr></thead>"
            f"<tbody>{''.join(failure_rows)}</tbody></table></div>"
        )

    sections.append(
        f'<p class="muted">scenarios: {_esc(", ".join(scenario_names))}</p>'
    )
    return _page("Policy tournament", "".join(sections))


def report_html(document: dict) -> str:
    """Render whichever analysis document this is (dispatch on schema)."""
    schema = document.get("schema")
    if schema == RUN_SUMMARY_SCHEMA:
        return run_report_html(document)
    if schema == CAMPAIGN_SCHEMA:
        return campaign_report_html(document)
    if schema == TOURNAMENT_SCHEMA:
        return tournament_report_html(document)
    raise ValueError(f"unrecognised analysis document schema: {schema!r}")
