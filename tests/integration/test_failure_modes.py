"""Failure-injection integration tests (Figure 7(d) mechanics)."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import run_simulation


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_nodes=12,
        num_racks=4,
        map_slots=2,
        code=CodeParams(8, 6),
        block_size=32 * MB,
        jobs=(JobConfig(num_blocks=96, num_reduce_tasks=4),),
        scheduler="EDF",
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestFailurePatterns:
    def test_double_node_failure_completes(self):
        result = run_simulation(config(failure=FailurePattern.DOUBLE_NODE))
        assert len(result.failed_nodes) == 2
        assert len(result.job(0).tasks) == 100

    def test_rack_failure_completes(self):
        result = run_simulation(config(failure=FailurePattern.RACK))
        assert len(result.failed_nodes) == 3
        assert len(result.job(0).tasks) == 100

    def test_more_failures_more_degraded_tasks(self):
        single = run_simulation(config(failure=FailurePattern.SINGLE_NODE))
        double = run_simulation(config(failure=FailurePattern.DOUBLE_NODE))
        rack = run_simulation(config(failure=FailurePattern.RACK))
        assert (
            single.job(0).degraded_task_count
            <= double.job(0).degraded_task_count
            <= rack.job(0).degraded_task_count
        )

    def test_runtime_grows_with_failure_severity(self):
        runtimes = {}
        for pattern in (
            FailurePattern.NONE,
            FailurePattern.SINGLE_NODE,
            FailurePattern.RACK,
        ):
            total = 0.0
            for seed in range(3):
                total += run_simulation(config(failure=pattern, seed=seed)).job(0).runtime
            runtimes[pattern] = total
        assert runtimes[FailurePattern.NONE] < runtimes[FailurePattern.SINGLE_NODE]
        assert runtimes[FailurePattern.SINGLE_NODE] < runtimes[FailurePattern.RACK]

    def test_failure_eligible_respected(self):
        result = run_simulation(config(failure_eligible=(7,)))
        assert result.failed_nodes == frozenset({7})


class TestToleranceLimits:
    def test_rack_failure_survivable_by_construction(self):
        """The Section III placement rule makes any one rack expendable."""
        for seed in range(3):
            result = run_simulation(config(failure=FailurePattern.RACK, seed=seed))
            assert len(result.job(0).tasks) == 100

    def test_unrecoverable_failure_detected(self):
        """Failing more nodes than the code tolerates raises, not corrupts."""
        from repro.cluster.topology import ClusterTopology
        from repro.sim.rng import RngStreams
        from repro.storage.hdfs import HdfsRaidCluster

        topology = ClusterTopology.from_rack_sizes([3, 3])
        cluster = HdfsRaidCluster(
            topology, CodeParams(4, 2), num_native_blocks=24,
            placement="declustered", rng=RngStreams(1),
        )
        stripe_nodes = [s.node_id for s in cluster.block_map.stripe_blocks(0)]
        with pytest.raises(RuntimeError):
            cluster.failure_view(frozenset(stripe_nodes[:3]))
