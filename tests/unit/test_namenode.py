"""Unit tests for the BlockMap (namenode metadata)."""

from __future__ import annotations

import pytest

from repro.ec.codec import CodeParams
from repro.storage.block import BlockId
from repro.storage.namenode import BlockMap


def build_map():
    """Two (4,2) stripes over six nodes, hand-placed.

    Stripe 0: B00@0 B01@1 P00@3 P01@4
    Stripe 1: B10@2 B11@0 P10@4 P11@5
    Three real native blocks (the fourth native position is padding).
    """
    params = CodeParams(4, 2)
    k = params.k
    assignment = {
        BlockId(0, 0, k): 0,
        BlockId(0, 1, k): 1,
        BlockId(0, 2, k): 3,
        BlockId(0, 3, k): 4,
        BlockId(1, 0, k): 2,
        BlockId(1, 1, k): 0,
        BlockId(1, 2, k): 4,
        BlockId(1, 3, k): 5,
    }
    return BlockMap(params, assignment, num_native_blocks=3), params


class TestBasics:
    def test_stripe_count(self):
        block_map, _ = build_map()
        assert block_map.num_stripes == 2

    def test_missing_assignment_rejected(self):
        params = CodeParams(4, 2)
        with pytest.raises(ValueError):
            BlockMap(params, {}, num_native_blocks=1)

    def test_negative_natives_rejected(self):
        with pytest.raises(ValueError):
            BlockMap(CodeParams(4, 2), {}, num_native_blocks=-1)

    def test_node_of(self):
        block_map, params = build_map()
        assert block_map.node_of(BlockId(0, 0, params.k)) == 0
        with pytest.raises(KeyError):
            block_map.node_of(BlockId(9, 0, params.k))

    def test_blocks_on_node(self):
        block_map, params = build_map()
        on_zero = block_map.blocks_on_node(0)
        assert [str(b) for b in on_zero] == ["B_{0,0}", "B_{1,1}"]

    def test_native_blocks_respects_count(self):
        block_map, _ = build_map()
        natives = block_map.native_blocks()
        assert [str(b) for b in natives] == ["B_{0,0}", "B_{0,1}", "B_{1,0}"]

    def test_stripe_blocks(self):
        block_map, _ = build_map()
        stored = block_map.stripe_blocks(0)
        assert [s.node_id for s in stored] == [0, 1, 3, 4]

    def test_all_blocks(self):
        block_map, _ = build_map()
        assert len(block_map.all_blocks()) == 8

    def test_blocks_per_node(self):
        block_map, _ = build_map()
        assert block_map.blocks_per_node()[0] == 2
        assert block_map.blocks_per_node()[4] == 2


class TestFailureViews:
    def test_lost_native_blocks(self):
        block_map, _ = build_map()
        lost = block_map.lost_native_blocks({0})
        assert [str(b) for b in lost] == ["B_{0,0}"]
        # B_{1,1} also lives on node 0 but is beyond the real native count.

    def test_surviving_stripe_blocks(self):
        block_map, _ = build_map()
        survivors = block_map.surviving_stripe_blocks(0, {0, 1})
        assert [s.node_id for s in survivors] == [3, 4]

    def test_is_recoverable(self):
        block_map, _ = build_map()
        assert block_map.is_recoverable(0, {0, 1})
        assert not block_map.is_recoverable(0, {0, 1, 3})

    def test_check_recoverable_raises(self):
        block_map, _ = build_map()
        block_map.check_recoverable({0})
        with pytest.raises(RuntimeError):
            block_map.check_recoverable({0, 1, 3})

    def test_native_blocks_on_node(self):
        block_map, _ = build_map()
        assert [str(b) for b in block_map.native_blocks_on_node(0)] == ["B_{0,0}"]
        assert block_map.native_blocks_on_node(5) == []
