"""Batched GF(2^8) kernels held byte-identical to their scalar references.

The PR-4 reference-oracle idiom: the pre-kernel implementations survive as
``matvec_blocks_reference`` / ``matmul_reference`` / ``invert_reference``
and Hypothesis drives both sides across shapes, 0/1 coefficient edge cases,
zero-length blocks, and lengths straddling the packed-kernel threshold.
The decode-plan cache is held byte-identical to cold decodes the same way.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import matrix as gfm
from repro.ec.matrix import PACKED_MIN_BLOCK, SingularMatrixError
from repro.ec.reed_solomon import ReedSolomon

#: Element strategy biased towards the 0/1 special cases the kernels route
#: through zero-row / unit-row / copy fast paths.
gf_elements = st.one_of(st.sampled_from([0, 1]), st.integers(min_value=0, max_value=255))

#: Block lengths spanning the small-gather path, the packed-path threshold,
#: odd lengths (pair padding), and the zero-length edge case.
block_lengths = st.sampled_from(
    [0, 1, 2, 3, 17, 64, PACKED_MIN_BLOCK - 1, PACKED_MIN_BLOCK, PACKED_MIN_BLOCK + 1]
)


@st.composite
def gf_matrix(draw, min_rows=0, max_rows=5, min_cols=1, max_cols=5, square=False):
    rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    cols = rows if square else draw(st.integers(min_value=min_cols, max_value=max_cols))
    data = draw(
        st.lists(
            st.lists(gf_elements, min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.array(data, dtype=np.uint8).reshape(rows, cols)


def random_blocks(count: int, length: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(count)]


class TestMatvecEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(gf_matrix(), block_lengths, st.integers(min_value=0, max_value=2**31))
    def test_matches_reference(self, matrix, length, seed):
        blocks = random_blocks(matrix.shape[1], length, seed)
        fast = gfm.matvec_blocks(matrix, blocks)
        slow = gfm.matvec_blocks_reference(matrix, blocks)
        assert len(fast) == len(slow)
        for fast_row, slow_row in zip(fast, slow):
            assert fast_row.dtype == np.uint8
            assert np.array_equal(fast_row, slow_row)

    @settings(max_examples=20, deadline=None)
    @given(gf_matrix(min_rows=1), st.integers(min_value=0, max_value=2**31))
    def test_compiled_plan_reusable(self, matrix, seed):
        """One compiled BatchedMatvec applied twice gives fresh, equal rows."""
        plan = gfm.BatchedMatvec(matrix)
        blocks = random_blocks(matrix.shape[1], PACKED_MIN_BLOCK + 3, seed)
        first = plan.apply(blocks)
        second = plan.apply(blocks)
        oracle = gfm.matvec_blocks_reference(matrix, blocks)
        for one, two, truth in zip(first, second, oracle):
            assert np.array_equal(one, truth)
            assert np.array_equal(two, truth)
            assert one is not two  # outputs are safe to mutate

    def test_outputs_not_aliased_to_inputs(self):
        """Unit rows return copies, never views of the caller's blocks."""
        matrix = np.array([[1, 0], [0, 1], [2, 3]], dtype=np.uint8)
        blocks = random_blocks(2, 32, seed=7)
        out = gfm.matvec_blocks(matrix, blocks)
        out[0][:] = 0
        assert not np.array_equal(out[0], blocks[0])


class TestMatmulEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(gf_matrix(max_rows=5), st.integers(min_value=1, max_value=5), st.data())
    def test_matches_reference(self, a, cols_b, data):
        rows_b = a.shape[1]
        b = data.draw(gf_matrix(min_rows=rows_b, max_rows=rows_b, min_cols=cols_b, max_cols=cols_b))
        assert np.array_equal(gfm.matmul(a, b), gfm.matmul_reference(a, b))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gfm.matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))


class TestInvertEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(gf_matrix(min_rows=1, max_rows=6, square=True))
    def test_matches_reference_including_singular_column(self, matrix):
        """Both sides invert identically or fail naming the same column."""
        try:
            slow = gfm.invert_reference(matrix)
        except SingularMatrixError as err:
            with pytest.raises(SingularMatrixError) as caught:
                gfm.invert(matrix)
            assert str(caught.value) == str(err)
        else:
            fast = gfm.invert(matrix)
            assert np.array_equal(fast, slow)
            assert np.array_equal(gfm.matmul(matrix, fast), gfm.identity(len(matrix)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=4))
    def test_systematic_submatrices_invert(self, k, parity):
        """Any k rows of the systematic generator stay invertible (MDS)."""
        generator = gfm.systematic_encoding_matrix(k + parity, k)
        sub = generator[parity : parity + k]
        assert np.array_equal(gfm.invert(sub), gfm.invert_reference(sub))


@st.composite
def coder_and_survivors(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    parity = draw(st.integers(min_value=1, max_value=3))
    n = k + parity
    survivors = tuple(
        sorted(draw(st.permutations(range(n)))[:k])
    )
    return ReedSolomon(n, k), survivors


class TestDecodePlanCache:
    @settings(max_examples=40, deadline=None)
    @given(coder_and_survivors(), st.integers(min_value=0, max_value=2**31), block_lengths)
    def test_cache_hit_byte_identical_to_cold_decode(self, coder_survivors, seed, length):
        coder, survivors = coder_survivors
        natives = [b.tobytes() for b in random_blocks(coder.k, length, seed)]
        stripe = natives + coder.encode(natives)
        available = {index: stripe[index] for index in survivors}
        cold = ReedSolomon(coder.n, coder.k).decode(available)
        warm_miss = coder.decode(available)
        warm_hit = coder.decode(available)
        assert cold == warm_miss == warm_hit == [bytes(native) for native in natives]
        info = coder.plan_cache_info()
        assert info["plan_misses"] == 1
        assert info["plan_hits"] == 1

    @settings(max_examples=30, deadline=None)
    @given(coder_and_survivors(), st.integers(min_value=0, max_value=2**31))
    def test_reconstruct_block_warm_equals_cold(self, coder_survivors, seed):
        coder, survivors = coder_survivors
        natives = [b.tobytes() for b in random_blocks(coder.k, 37, seed)]
        stripe = natives + coder.encode(natives)
        available = {index: stripe[index] for index in survivors}
        for lost in range(coder.n):
            if lost in available:
                continue
            cold = ReedSolomon(coder.n, coder.k).reconstruct_block(lost, available)
            warm = coder.reconstruct_block(lost, available)
            again = coder.reconstruct_block(lost, available)
            assert cold == warm == again == stripe[lost]

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=3),
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_encode_stripes_matches_per_stripe_encode(self, k, parity, lengths, seed):
        """Batched stacking + truncation == one encode call per stripe."""
        coder = ReedSolomon(k + parity, k)
        stripes = [
            [b.tobytes() for b in random_blocks(k, length, seed + i)]
            for i, length in enumerate(lengths)
        ]
        batched = coder.encode_stripes(stripes)
        assert batched == [coder.encode(stripe) for stripe in stripes]
