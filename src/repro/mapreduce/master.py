"""The job tracker: job lifecycle and heartbeat-driven scheduling.

The :class:`JobTracker` owns the FIFO job list, the per-job
:class:`~repro.core.tasks.JobTaskState`, and the pluggable scheduler.  Slave
processes call :meth:`JobTracker.heartbeat`; completion callbacks flow back
through :meth:`on_map_complete` / :meth:`on_reduce_complete`.

Fault tolerance lives here too (see :mod:`repro.faults`):

* the master timestamps every heartbeat and :meth:`declare_dead` fires once
  a tracker has been silent past the expiry interval -- the omniscient
  :meth:`fail_node` remains as the declaration's mechanism (and as the
  legacy at-start path);
* every launched attempt is registered in-flight, so a declared death can
  requeue exactly the work the dead node held;
* per-task failure counts enforce a retry budget (``max_attempts``); a task
  that exhausts it fails its whole job cleanly via :meth:`_fail_job`;
* per-node consecutive death counts feed a blacklist the schedulers' live
  view respects;
* when a job's map phase is fully dispatched, stragglers get speculative
  backup attempts; the first finisher wins.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, replace

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import Scheduler
from repro.core.tasks import JobTaskState
from repro.faults.records import (
    BlacklistRecord,
    CorruptionRecord,
    DetectionRecord,
    FaultTimeline,
    RecoveryRecord,
)
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapAssignment, MapTaskCategory, ReduceAssignment
from repro.mapreduce.metrics import JobMetrics, TaskRecord
from repro.mapreduce.shuffle import JobShuffle
from repro.sim.engine import Event, Process, Simulator
from repro.storage.hdfs import HdfsRaidCluster

#: Attempt-registry key: ("map", job_id, block) or ("reduce", job_id, index).
AttemptKey = tuple


@dataclass
class RunningAttempt:
    """One in-flight task attempt the master knows about."""

    key: AttemptKey
    assignment: MapAssignment | ReduceAssignment
    process: Process | None
    launch_time: float
    number: int


def _attempt_key(assignment: MapAssignment | ReduceAssignment) -> AttemptKey:
    if isinstance(assignment, MapAssignment):
        return ("map", assignment.job_id, assignment.block)
    return ("reduce", assignment.job_id, assignment.reduce_index)


class JobTracker:
    """Master-side state: jobs, scheduler, and completion accounting.

    Parameters
    ----------
    sim:
        The simulation engine.
    topology:
        Cluster layout.
    hdfs:
        The erasure-coded storage cluster (shared by all jobs).
    scheduler:
        The scheduling policy under test.
    failed_nodes:
        Nodes that are down when the trial starts; :meth:`fail_node` can
        take down further nodes mid-run (omnisciently), and
        :meth:`declare_dead` does the same from heartbeat expiry.
    max_attempts:
        Retry budget per task; a task killed this many times fails its job
        with a :class:`~repro.faults.errors.JobFailedError`.
    blacklist_threshold:
        Consecutive declared deaths after which a node is blacklisted
        (never assigned work again, even after recovery); ``None`` disables
        blacklisting.
    speculative:
        Enable speculative backup attempts for straggling map tasks.
    speculative_multiplier:
        A running map attempt is a straggler once its elapsed time exceeds
        this multiple of the median completed map duration.
    """

    #: Completed map durations needed before the straggler median is trusted.
    SPECULATIVE_MIN_SAMPLES = 3

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        hdfs: HdfsRaidCluster,
        scheduler: Scheduler,
        failed_nodes: frozenset[int],
        *,
        max_attempts: int = 4,
        blacklist_threshold: int | None = 3,
        speculative: bool = False,
        speculative_multiplier: float = 1.5,
        bus=None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.hdfs = hdfs
        self.scheduler = scheduler
        #: Optional observability event bus (None = instrumentation off).
        self.bus = bus
        self.failed_nodes = frozenset(failed_nodes)
        self.killed_tasks = 0
        self.max_attempts = max_attempts
        self.blacklist_threshold = blacklist_threshold
        self.speculative = speculative
        self.speculative_multiplier = speculative_multiplier

        self.active_jobs: list[JobTaskState] = []
        self._jobs_by_id: dict[int, JobTaskState] = {}
        self.metrics: dict[int, JobMetrics] = {}
        self.shuffles: dict[int, JobShuffle] = {}
        self._expected_jobs = 0
        self._finished_jobs = 0
        self.all_done: Event = sim.event(name="all-jobs-done")

        # -- fault-tolerance state ------------------------------------------
        self.faults = FaultTimeline()
        #: Last heartbeat instant per node the master believes is alive.
        self.last_heartbeat: dict[int, float] = {
            node_id: 0.0
            for node_id in topology.node_ids()
            if node_id not in self.failed_nodes
        }
        self.blacklisted: set[int] = set()
        #: Declared deaths per node since its last successful completion.
        self.consecutive_failures: dict[int, int] = {}
        self._attempts_by_task: dict[AttemptKey, list[RunningAttempt]] = {}
        self._attempts_by_node: dict[int, list[RunningAttempt]] = {}
        self._attempt_counts: dict[AttemptKey, int] = {}
        self._failure_counts: dict[AttemptKey, int] = {}
        self._completed_maps: dict[int, set[AttemptKey]] = {}
        self._map_durations: dict[int, list[float]] = {}

        # -- online repair / data-availability state ------------------------
        #: Attached by the simulation wiring when a RepairConfig is set.
        self.repair_driver = None
        #: Fired whenever data availability improves (a node recovered or a
        #: repaired block landed); parked ``wait_for_repair`` tasks wait on
        #: it, re-check their stripe and re-park if still undecodable.
        self._availability: Event | None = None
        #: Tasks currently parked waiting for repair (``wait_for_repair``).
        self.parked_tasks = 0
        self._corruption_reported: set = set()

    @property
    def finished(self) -> bool:
        """True once every expected job has completed (or failed)."""
        return self._expected_jobs > 0 and self._finished_jobs >= self._expected_jobs

    def expect_jobs(self, count: int) -> None:
        """Declare how many jobs this run will submit in total."""
        if count <= 0:
            raise ValueError("a simulation needs at least one job")
        self._expected_jobs = count

    def submit_job(self, job_id: int, config: JobConfig) -> JobTaskState:
        """Initialise a job at its submit time and append it to the FIFO list.

        A job processes the first ``config.num_blocks`` native blocks of the
        stored file, so jobs with fewer blocks than the file holds see a
        truncated view.
        """
        view = self.hdfs.failure_view(self.failed_nodes, strict=False)
        if config.num_blocks < len(view.lost_blocks) + len(view.available_blocks):
            view = replace(
                view,
                lost_blocks=tuple(
                    block
                    for block in view.lost_blocks
                    if block.native_index < config.num_blocks
                ),
                available_blocks=tuple(
                    block
                    for block in view.available_blocks
                    if block.native_index < config.num_blocks
                ),
            )
        state = JobTaskState(
            job_id=job_id,
            config=config,
            view=view,
            block_map=self.hdfs.block_map,
            topology=self.topology,
        )
        self.active_jobs.append(state)
        self._jobs_by_id[job_id] = state
        self.metrics[job_id] = JobMetrics(job_id=job_id, submit_time=self.sim.now)
        self.shuffles[job_id] = JobShuffle(
            self.sim, config.num_reduce_tasks, self.topology,
            job_id=job_id, bus=self.bus,
        )
        self._completed_maps[job_id] = set()
        self._map_durations[job_id] = []
        if self.bus is not None:
            self.bus.emit(
                "job.submit", self.sim.now,
                job_id=job_id,
                num_blocks=config.num_blocks,
                num_reduce_tasks=config.num_reduce_tasks,
                degraded_tasks=state.total_degraded_tasks,
            )
        return state

    def heartbeat(
        self, slave_id: int, free_map_slots: int, free_reduce_slots: int
    ) -> tuple[list[MapAssignment], list[ReduceAssignment]]:
        """Handle one slave heartbeat: delegate to the scheduler, log launches."""
        self.last_heartbeat[slave_id] = self.sim.now
        maps: list[MapAssignment] = []
        reduces: list[ReduceAssignment] = []
        if slave_id not in self.blacklisted and self.active_jobs:
            maps, reduces = self.scheduler.assign(
                slave_id, free_map_slots, free_reduce_slots, self.active_jobs, self.sim.now
            )
            if self.speculative and len(maps) < free_map_slots:
                maps = maps + self._speculative_assignments(
                    slave_id, free_map_slots - len(maps)
                )
            for assignment in maps:
                self._note_launch(assignment.job_id)
            for assignment in reduces:
                self._note_launch(assignment.job_id)
        if self.bus is not None:
            self.bus.emit(
                "heartbeat", self.sim.now,
                node=slave_id,
                free_map=free_map_slots,
                free_reduce=free_reduce_slots,
                assigned_maps=len(maps),
                assigned_reduces=len(reduces),
            )
        return maps, reduces

    def job_state(self, job_id: int) -> JobTaskState:
        """Look up an active job's scheduling state (O(1))."""
        try:
            return self._jobs_by_id[job_id]
        except KeyError:
            raise KeyError(f"job {job_id} is not active") from None

    def active_job(self, job_id: int) -> JobTaskState | None:
        """Like :meth:`job_state`, but ``None`` once the job has retired.

        Task processes use this to notice that their job was aborted
        between assignment and their first step: :meth:`_fail_job`'s
        interrupt loses that race (the engine drops a throw once the
        pending spawn resume has run), so the attempt must discover the
        abort itself.
        """
        return self._jobs_by_id.get(job_id)

    # -- attempt registry --------------------------------------------------------

    def note_attempt_started(
        self, assignment: MapAssignment | ReduceAssignment, process: Process | None = None
    ) -> RunningAttempt:
        """Register a just-launched attempt so the master can requeue or kill it."""
        key = _attempt_key(assignment)
        number = self._attempt_counts.get(key, 0) + 1
        self._attempt_counts[key] = number
        attempt = RunningAttempt(
            key=key,
            assignment=assignment,
            process=process,
            launch_time=self.sim.now,
            number=number,
        )
        self._attempts_by_task.setdefault(key, []).append(attempt)
        self._attempts_by_node.setdefault(assignment.slave_id, []).append(attempt)
        return attempt

    def attempt_of(self, assignment: MapAssignment | ReduceAssignment) -> int:
        """Attempt number of a registered in-flight assignment (1 if unknown)."""
        for attempt in self._attempts_by_task.get(_attempt_key(assignment), []):
            if attempt.assignment == assignment:
                return attempt.number
        return 1

    def _deregister(self, assignment: MapAssignment | ReduceAssignment) -> None:
        key = _attempt_key(assignment)
        attempts = self._attempts_by_task.get(key, [])
        for attempt in attempts:
            if attempt.assignment == assignment:
                attempts.remove(attempt)
                node_list = self._attempts_by_node.get(assignment.slave_id, [])
                if attempt in node_list:
                    node_list.remove(attempt)
                break
        if not attempts:
            self._attempts_by_task.pop(key, None)

    # -- completion callbacks ---------------------------------------------------

    def on_map_complete(
        self,
        record: TaskRecord,
        shuffle_bytes: float,
        assignment: MapAssignment | None = None,
    ) -> None:
        """A map task finished: account it, deposit shuffle data.

        ``assignment`` identifies the attempt for speculative-execution and
        retry bookkeeping; without it (unit-test convenience) the completion
        is taken at face value.
        """
        if assignment is not None:
            self._deregister(assignment)
            self.consecutive_failures[assignment.slave_id] = 0
            state = self._jobs_by_id.get(record.job_id)
            if state is None:
                return  # the job was abandoned while this attempt ran
            key = _attempt_key(assignment)
            completed = self._completed_maps[record.job_id]
            if key in completed:
                return  # a sibling attempt won the race first
            completed.add(key)
            self._kill_other_attempts(key, record.job_id)
            self._map_durations[record.job_id].append(record.runtime)
        else:
            state = self.job_state(record.job_id)
        state.on_map_complete()
        self.metrics[record.job_id].tasks.append(record)
        shuffle = self.shuffles[record.job_id]
        shuffle.deposit(record.slave_id, shuffle_bytes)
        if state.maps_all_completed():
            shuffle.notify_maps_done()
            if state.job_completed():
                self._finish_job(state)

    def on_reduce_complete(
        self, record: TaskRecord, assignment: ReduceAssignment | None = None
    ) -> None:
        """A reduce task finished."""
        if assignment is not None:
            self._deregister(assignment)
            self.consecutive_failures[assignment.slave_id] = 0
            state = self._jobs_by_id.get(record.job_id)
            if state is None:
                return
        else:
            state = self.job_state(record.job_id)
        state.on_reduce_complete()
        self.metrics[record.job_id].tasks.append(record)
        if state.job_completed():
            self._finish_job(state)

    # -- mid-run failure ---------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Take a node down while jobs are running.

        Pending tasks whose blocks lived on the node become degraded tasks;
        the EDF guard's live-node view shrinks.  Killing the node's *running*
        tasks is the slave runtime's job (it holds the processes) -- see
        :meth:`on_map_task_killed` / :meth:`on_reduce_task_killed` for the
        requeue half (or :meth:`declare_dead`, which requeues from the
        master's own in-flight registry when the death was detected rather
        than scripted).

        Simplification (documented in DESIGN.md): intermediate map outputs
        already shuffled out of the node survive; Hadoop would re-execute
        completed maps whose output was lost, a second-order effect the
        paper's simulator also ignores.
        """
        if node_id in self.failed_nodes:
            return
        self.failed_nodes = self.failed_nodes | {node_id}
        self.last_heartbeat.pop(node_id, None)
        # Deliberately *no* recoverability check here: more than ``n - k``
        # concurrent failures are handled lazily, per task, when a degraded
        # read finds fewer than ``k`` readable survivors (it then fails the
        # job with DataUnavailableError, or parks under wait_for_repair).
        live = self.scheduler.context.live_nodes
        if isinstance(live, set):
            live.discard(node_id)
        for state in self.active_jobs:
            state.on_node_failure(node_id)
        if self.repair_driver is not None:
            self.repair_driver.on_node_failed(node_id)
        if self.bus is not None:
            self.bus.emit("node.fail", self.sim.now, node=node_id)
        count = self.consecutive_failures.get(node_id, 0) + 1
        self.consecutive_failures[node_id] = count
        if (
            self.blacklist_threshold is not None
            and count >= self.blacklist_threshold
            and node_id not in self.blacklisted
        ):
            self.blacklisted.add(node_id)
            self.faults.blacklistings.append(
                BlacklistRecord(
                    node=node_id, at=self.sim.now, consecutive_failures=count
                )
            )
            if self.bus is not None:
                self.bus.emit(
                    "node.blacklist", self.sim.now,
                    node=node_id, consecutive_failures=count,
                )

    def declare_dead(self, node_id: int, failed_at: float | None = None) -> None:
        """Heartbeat expiry fired: declare the node dead and requeue its work.

        ``failed_at`` is the ground-truth crash instant (from the failure
        schedule), recorded purely so detection latency is measurable; the
        master's actual decision uses only heartbeat timestamps.
        """
        if node_id in self.failed_nodes:
            return
        detected_at = self.sim.now
        record = DetectionRecord(
            node=node_id,
            failed_at=detected_at if failed_at is None else failed_at,
            detected_at=detected_at,
        )
        self.faults.detections.append(record)
        if self.bus is not None:
            self.bus.emit(
                "failure.detect", detected_at,
                node=node_id,
                failed_at=record.failed_at,
                latency=record.latency,
            )
        self.fail_node(node_id)
        self.requeue_node_attempts(node_id)

    def requeue_node_attempts(self, node_id: int) -> None:
        """Hand every in-flight attempt of a (formerly) dead node back.

        Called by :meth:`declare_dead`, and directly by the slave runtime
        when a crashed node recovers *before* the expiry fired: the
        rejoining tracker reports empty slots, so its old attempts are
        requeued at that instant instead.
        """
        for attempt in list(self._attempts_by_node.get(node_id, [])):
            if attempt.key[0] == "map":
                self.on_map_task_killed(attempt.assignment)
            else:
                self.on_reduce_task_killed(attempt.assignment)
        self._attempts_by_node.pop(node_id, None)

    def recover_node(self, node_id: int) -> int:
        """A failed node rejoined: restore it to the live view.

        Its stored blocks are readable again, so each job reclaims pending
        degraded tasks whose block came back.  A blacklisted node rejoins
        the cluster but stays out of the live-node view and receives no
        assignments.  Returns the number of reclaimed tasks.
        """
        if node_id not in self.failed_nodes:
            return 0
        self.failed_nodes = self.failed_nodes - {node_id}
        self.last_heartbeat[node_id] = self.sim.now
        if node_id not in self.blacklisted:
            live = self.scheduler.context.live_nodes
            if isinstance(live, set):
                live.add(node_id)
        reclaimed = sum(
            state.on_node_recovery(node_id) for state in self.active_jobs
        )
        self.faults.recoveries.append(
            RecoveryRecord(node=node_id, at=self.sim.now, reclaimed_tasks=reclaimed)
        )
        if self.bus is not None:
            self.bus.emit(
                "node.recover", self.sim.now, node=node_id, reclaimed_tasks=reclaimed
            )
        self.notify_availability()
        if self.repair_driver is not None:
            self.repair_driver.on_availability_changed()
        return reclaimed

    # -- online repair and data availability -----------------------------------

    def availability_event(self) -> Event:
        """The event parked ``wait_for_repair`` tasks sleep on.

        A fresh event is created after each :meth:`notify_availability`
        firing, so every waiter wakes exactly once per availability change.
        """
        if self._availability is None or self._availability.fired:
            self._availability = self.sim.event(name="availability")
        return self._availability

    def notify_availability(self) -> None:
        """Wake every parked task: data availability just improved."""
        if self._availability is not None and not self._availability.fired:
            self._availability.succeed()

    def on_block_repaired(self, block, new_home: int) -> int:
        """A rebuilt block landed on ``new_home``: reclassify and wake.

        Pending degraded tasks waiting on the block return to the normal
        pool with the new locality; parked tasks re-check their stripes.
        Returns the number of reclaimed tasks.
        """
        reclaimed = sum(
            state.on_block_repaired(block, new_home) for state in self.active_jobs
        )
        self.notify_availability()
        return reclaimed

    def report_corruption(self, block, via: str) -> None:
        """A checksum-bad block was discovered (read-time or scrubber).

        Records the discovery once per block, emits ``block.corrupt`` and
        queues the block for rebuild when a repair driver is attached.
        """
        if block in self._corruption_reported:
            return
        self._corruption_reported.add(block)
        node = self.hdfs.block_map.node_of(block)
        self.faults.corruptions.append(
            CorruptionRecord(
                block=str(block), node=node, detected_at=self.sim.now, via=via
            )
        )
        if self.bus is not None:
            self.bus.emit(
                "block.corrupt", self.sim.now,
                block=str(block), node=node, via=via,
            )
        if self.repair_driver is not None:
            self.repair_driver.enqueue(block)

    def attempt_record(
        self, assignment: MapAssignment | ReduceAssignment
    ) -> RunningAttempt | None:
        """The registered in-flight attempt matching ``assignment``, if any."""
        for attempt in self._attempts_by_task.get(_attempt_key(assignment), []):
            if attempt.assignment == assignment:
                return attempt
        return None

    def fail_job_data_unavailable(self, job_id: int, reason: str) -> None:
        """Abandon a job because a stripe dropped below ``k`` readable blocks."""
        state = self._jobs_by_id.get(job_id)
        if state is None:
            return  # already retired
        self._fail_job(state, reason, kind="data-unavailable")

    def on_map_task_killed(self, assignment: MapAssignment) -> None:
        """A running map attempt died with its node: account it, maybe requeue.

        Charges the attempt against the task's retry budget (failing the
        job cleanly when exhausted) and only requeues when no sibling
        attempt is still running -- a surviving speculative copy already
        carries the task.
        """
        self._deregister(assignment)
        state = self._jobs_by_id.get(assignment.job_id)
        if state is None:
            return  # the job was already abandoned
        self.killed_tasks += 1
        self.metrics[assignment.job_id].killed_attempts += 1
        key = _attempt_key(assignment)
        failures = self._failure_counts.get(key, 0) + 1
        self._failure_counts[key] = failures
        if self.bus is not None:
            self.bus.emit(
                "task.requeue", self.sim.now,
                job_id=assignment.job_id, task="map",
                node=assignment.slave_id, block=str(assignment.block),
                failures=failures,
            )
        if failures >= self.max_attempts:
            self._fail_job(
                state,
                f"map task for block {assignment.block} failed {failures} "
                f"time(s), exhausting max_attempts={self.max_attempts}",
            )
            return
        if self._attempts_by_task.get(key):
            return  # a sibling (speculative) attempt is still running
        home = self.hdfs.node_of(assignment.block)
        state.requeue_killed_map(
            assignment.block,
            was_degraded=assignment.category is MapTaskCategory.DEGRADED,
            lost=home in self.failed_nodes,
        )

    def on_reduce_task_killed(self, assignment: ReduceAssignment) -> None:
        """A running reduce attempt died with its node: requeue and reset it."""
        self._deregister(assignment)
        state = self._jobs_by_id.get(assignment.job_id)
        if state is None:
            return
        self.killed_tasks += 1
        self.metrics[assignment.job_id].killed_attempts += 1
        key = _attempt_key(assignment)
        failures = self._failure_counts.get(key, 0) + 1
        self._failure_counts[key] = failures
        if self.bus is not None:
            self.bus.emit(
                "task.requeue", self.sim.now,
                job_id=assignment.job_id, task="reduce",
                node=assignment.slave_id, reduce_index=assignment.reduce_index,
                failures=failures,
            )
        if failures >= self.max_attempts:
            self._fail_job(
                state,
                f"reduce task {assignment.reduce_index} failed {failures} "
                f"time(s), exhausting max_attempts={self.max_attempts}",
            )
            return
        state.requeue_killed_reduce(assignment.reduce_index)
        self.shuffles[assignment.job_id].reset_reducer(assignment.reduce_index)

    # -- speculative execution ---------------------------------------------------

    def _speculative_assignments(
        self, slave_id: int, free_slots: int
    ) -> list[MapAssignment]:
        """Backup attempts for straggling maps, once a job's maps are dispatched."""
        assignments: list[MapAssignment] = []
        for job in self.active_jobs:
            if free_slots == 0:
                break
            if job.has_unassigned_maps() or job.maps_all_completed():
                continue
            durations = self._map_durations.get(job.job_id, ())
            if len(durations) < self.SPECULATIVE_MIN_SAMPLES:
                continue
            cutoff = self.speculative_multiplier * statistics.median(durations)
            for key, attempts in list(self._attempts_by_task.items()):
                if free_slots == 0:
                    break
                if key[0] != "map" or key[1] != job.job_id:
                    continue
                if len(attempts) != 1:
                    continue  # already has a backup (or is being torn down)
                (running,) = attempts
                if running.assignment.slave_id == slave_id:
                    continue  # a backup must run elsewhere
                if self.sim.now - running.launch_time <= cutoff:
                    continue
                backup = MapAssignment(
                    job_id=job.job_id,
                    block=running.assignment.block,
                    category=self._classify_block(running.assignment.block, slave_id),
                    slave_id=slave_id,
                    speculative=True,
                )
                assignments.append(backup)
                self.metrics[job.job_id].speculative_launched += 1
                free_slots -= 1
                if self.bus is not None:
                    self.bus.emit(
                        "spec.launch", self.sim.now,
                        job_id=job.job_id, block=str(backup.block),
                        node=slave_id, straggler_node=running.assignment.slave_id,
                        straggler_elapsed=self.sim.now - running.launch_time,
                        cutoff=cutoff,
                    )
        return assignments

    def _classify_block(self, block, slave_id: int) -> MapTaskCategory:
        """Locality category of running ``block`` on ``slave_id`` right now."""
        home = self.hdfs.node_of(block)
        if home in self.failed_nodes:
            return MapTaskCategory.DEGRADED
        if home == slave_id:
            return MapTaskCategory.NODE_LOCAL
        if self.topology.rack_of(home) == self.topology.rack_of(slave_id):
            return MapTaskCategory.RACK_LOCAL
        return MapTaskCategory.REMOTE

    def _kill_other_attempts(self, key: AttemptKey, job_id: int) -> None:
        """First finisher won: interrupt every sibling attempt of ``key``."""
        for attempt in list(self._attempts_by_task.get(key, [])):
            if attempt.process is not None:
                attempt.process.interrupt("speculative-kill")
            self._deregister(attempt.assignment)
            self.metrics[job_id].speculative_killed += 1

    # -- internals ------------------------------------------------------------------

    def _note_launch(self, job_id: int) -> None:
        metrics = self.metrics[job_id]
        if math.isnan(metrics.first_launch_time):
            metrics.first_launch_time = self.sim.now

    def _finish_job(self, state: JobTaskState) -> None:
        metrics = self.metrics[state.job_id]
        metrics.finish_time = self.sim.now
        if self.bus is not None:
            self.bus.emit(
                "job.finish", self.sim.now,
                job_id=state.job_id, runtime=metrics.runtime,
            )
        self._retire_job(state)

    def _fail_job(
        self, state: JobTaskState, reason: str, kind: str = "retry-budget"
    ) -> None:
        """Abandon a job cleanly: record why, kill its attempts, retire it."""
        metrics = self.metrics[state.job_id]
        metrics.failed = True
        metrics.failure_reason = reason
        metrics.failure_kind = kind
        metrics.finish_time = self.sim.now
        if self.bus is not None:
            self.bus.emit("job.fail", self.sim.now, job_id=state.job_id, reason=reason)
        for key, attempts in list(self._attempts_by_task.items()):
            if key[1] != state.job_id:
                continue
            for attempt in list(attempts):
                if attempt.process is not None:
                    attempt.process.interrupt("job-aborted")
                self._deregister(attempt.assignment)
        self._retire_job(state)

    def _retire_job(self, state: JobTaskState) -> None:
        self.active_jobs.remove(state)
        del self._jobs_by_id[state.job_id]
        self._finished_jobs += 1
        if self.finished and not self.all_done.fired:
            self.all_done.succeed()
