"""Unit tests for the policy tournament (spec, grid, ranking, report)."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.scheduler import registered_schedulers
from repro.ec import CodeParams
from repro.experiments.campaign import CampaignPolicy
from repro.experiments.tournament import (
    TOURNAMENT_SCHEMA,
    TournamentSpec,
    _rank,
    corpus_scenarios,
    default_scenarios,
    render_leaderboard,
    report_to_json,
    run_tournament,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.serialization import config_to_dict


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_nodes=12, num_racks=3, code=CodeParams(6, 4),
        jobs=(JobConfig(num_blocks=48),),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestTournamentSpec:
    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            TournamentSpec(scenarios=(), seeds=(0,))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            TournamentSpec(scenarios=(("a", small_config()),), seeds=())

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            TournamentSpec(
                scenarios=(("a", small_config()), ("a", small_config())),
                seeds=(0,),
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="NOT-A-POLICY"):
            TournamentSpec(
                scenarios=(("a", small_config()),),
                policies=("LF", "NOT-A-POLICY"),
                seeds=(0,),
            )

    def test_default_policies_freeze_the_registry(self):
        spec = TournamentSpec(scenarios=(("a", small_config()),), seeds=(0,))
        assert spec.policies == tuple(registered_schedulers())

    def test_grid_is_scenario_major_then_seed_then_policy(self):
        spec = TournamentSpec(
            scenarios=(("one", small_config()), ("two", small_config(seed=9))),
            policies=("LF", "EDF"),
            seeds=(0, 1),
        )
        configs, keys = spec.grid()
        assert keys == [
            ("one", 0, "LF"), ("one", 0, "EDF"),
            ("one", 1, "LF"), ("one", 1, "EDF"),
            ("two", 0, "LF"), ("two", 0, "EDF"),
            ("two", 1, "LF"), ("two", 1, "EDF"),
        ]
        for config, (_name, seed, policy) in zip(configs, keys):
            assert config.scheduler == policy
            assert config.seed == seed

    def test_default_scenarios_have_unique_stable_names(self):
        scenarios = default_scenarios(small_config())
        names = [name for name, _ in scenarios]
        assert names == [
            "fig7-default", "fig7-half-block", "fig7-rack-failure",
            "fig8-heterogeneous", "fig7f-multi-job",
        ]

    def test_to_dict_round_trips_through_json(self):
        spec = TournamentSpec(
            scenarios=(("a", small_config()),), policies=("LF",), seeds=(0,)
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["policies"] == ["LF"]
        assert payload["seeds"] == [0]
        assert payload["scenarios"][0]["name"] == "a"


class TestRanking:
    @staticmethod
    def row(mean, p99, completed=10, done=1):
        return {
            "makespan_mean_s": mean,
            "makespan_seconds": {"p50": mean},
            "degraded_read_seconds": {"p99": p99},
            "jobs": {"completed": completed},
            "done": done,
            "refused": 0,
        }

    def test_lowest_mean_makespan_wins(self):
        rows = {"SLOW": self.row(300.0, 1.0), "FAST": self.row(100.0, 9.0)}
        board = _rank(rows)
        assert [entry["policy"] for entry in board] == ["FAST", "SLOW"]
        assert [entry["rank"] for entry in board] == [1, 2]

    def test_ties_break_on_degraded_p99_then_name(self):
        rows = {
            "B": self.row(100.0, 2.0),
            "A": self.row(100.0, 2.0),
            "C": self.row(100.0, 1.0),
        }
        assert [entry["policy"] for entry in _rank(rows)] == ["C", "A", "B"]

    def test_policies_with_no_results_rank_last(self):
        rows = {
            "EMPTY": self.row(None, None, completed=0, done=0),
            "OK": self.row(500.0, 5.0),
        }
        board = _rank(rows)
        assert board[-1]["policy"] == "EMPTY"
        assert board[-1]["makespan_mean_s"] is None


class TestCorpusScenarios:
    @staticmethod
    def write_repro(path, config, scheduler):
        payload = {"config": config_to_dict(config), "scheduler": scheduler}
        path.write_text(json.dumps(payload, sort_keys=True))

    def test_loads_repro_files_sorted_by_name(self, tmp_path):
        self.write_repro(tmp_path / "b-case.json", small_config(seed=7), "EDF")
        self.write_repro(tmp_path / "a-case.json", small_config(seed=3), "LF")
        (tmp_path / "notes.txt").write_text("ignored")
        scenarios = corpus_scenarios(str(tmp_path))
        assert [name for name, _ in scenarios] == [
            "corpus-a-case", "corpus-b-case"
        ]
        # The embedded scheduler/seed are overridden by the tournament axes,
        # but the cluster shape must survive the round trip.
        assert scenarios[0][1].num_nodes == 12


class TestRunTournament:
    def test_report_schema_and_accounting(self, tmp_path):
        spec = TournamentSpec(
            scenarios=(("small", small_config()),),
            policies=("LF", "EDF"),
            seeds=(0,),
        )
        report, outcome = run_tournament(
            spec,
            CampaignPolicy(workers=1, on_error="collect"),
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        assert report["schema"] == TOURNAMENT_SCHEMA
        assert report["accounting"]["submitted"] == 2
        assert report["accounting"]["done"] == 2
        assert report["accounting"]["failed"] == 0
        assert outcome.counters.done == 2
        assert set(report["policies"]) == {"LF", "EDF"}
        for row in report["policies"].values():
            assert row["trials"] == 1
            assert row["done"] == 1
            assert row["scenarios"] == {"small": 1}
            assert row["makespan_mean_s"] is not None
        board = report["leaderboard"]
        assert len(board) == 2
        assert board[0]["makespan_mean_s"] <= board[1]["makespan_mean_s"]

        text = render_leaderboard(report)
        assert "== tournament ==" in text
        assert "2 policies x 1 scenario(s) x 1 seed(s)" in text
        for name in ("LF", "EDF"):
            assert name in text

        canonical = report_to_json(report)
        assert canonical.endswith("\n")
        assert json.loads(canonical) == json.loads(report_to_json(report))
        assert not math.isnan(json.loads(canonical)["accounting"]["done"])
