"""Ablation scheduler variants.

These isolate the design choices of degraded-first scheduling so the
benchmark suite can measure what each one buys:

* :class:`EagerDegradedScheduler` (``EAGER``) -- strict degraded priority
  with no pacing: the naive alternative the pacing rule improves on.
* :class:`UncappedDegradedFirstScheduler` (``BDF-UNCAPPED``) -- BDF without
  the one-degraded-task-per-heartbeat cap, so one slave can start several
  degraded reads at once.
* :class:`SlaveGuardOnlyScheduler` (``EDF-SLAVE``) -- EDF with only
  locality preservation (no rack awareness).
* :class:`RackGuardOnlyScheduler` (``EDF-RACK``) -- EDF with only rack
  awareness (no locality preservation).
"""

from __future__ import annotations

from repro.core.degraded_first import pacing_allows_degraded
from repro.core.enhanced import EnhancedDegradedFirstScheduler
from repro.core.scheduler import Scheduler
from repro.core.tasks import JobTaskState
from repro.mapreduce.job import MapAssignment


class EagerDegradedScheduler(Scheduler):
    """Launch every degraded task as soon as any slot frees.

    The opposite extreme from locality-first: degraded tasks get strict
    priority with no pacing and no per-heartbeat cap, so all degraded reads
    start together at the *beginning* of the map phase and congest the rack
    links there instead of at the end.
    """

    name = "EAGER"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        for job in jobs:
            while free_map_slots > 0:
                assignment = (
                    self._try_degraded(job, slave_id)
                    or self._try_local(job, slave_id)
                    or self._try_remote(job, slave_id)
                )
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign", reason="eager",
                        category=assignment.category.value,
                        block=str(assignment.block),
                    )
            if free_map_slots == 0:
                break
        return assignments


class UncappedDegradedFirstScheduler(Scheduler):
    """BDF's pacing rule without the one-per-heartbeat cap.

    Whenever the pacing condition holds, a degraded task is admitted --
    even several in the same heartbeat on the same slave, which makes
    that slave's simultaneous degraded reads compete with each other
    (the situation Line 4 of Algorithm 2 exists to prevent).
    """

    name = "BDF-UNCAPPED"

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        for job in jobs:
            while free_map_slots > 0:
                # Pacing state is captured before any pop mutates m/m_d.
                pacing = self.pacing_fields(job) if tracing else {}
                assignment = None
                if job.has_unassigned_degraded() and pacing_allows_degraded(job):
                    assignment = self._try_degraded(job, slave_id)
                if assignment is None:
                    assignment = self._try_local(job, slave_id) or self._try_remote(
                        job, slave_id
                    )
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign", reason="uncapped",
                        category=assignment.category.value,
                        block=str(assignment.block),
                        **pacing,
                    )
            if free_map_slots == 0:
                break
        return assignments


class _DisabledGuardTrace:
    """Scrub a disabled guard's quantities from the decision trace.

    The single-guard ablations force one guard verdict to ``True`` without
    evaluating it, but EDF's tracing path records the raw quantities behind
    both guards.  The sanitizer cross-checks verdicts against quantities
    (``edf-guard``), so a forced verdict next to never-consulted numbers
    would read as a lying trace.  Dropping the disabled guard's quantities
    keeps the trace honest: verdict present, nothing claiming to justify it.
    """

    #: Trace fields of the guard this ablation disables.
    _disabled_quantities: tuple[str, ...] = ()

    def _degraded_guards(self, job: JobTaskState, slave_id: int, now: float) -> bool:
        verdict = super()._degraded_guards(job, slave_id, now)
        if self.last_guard_trace:
            for name in self._disabled_quantities:
                self.last_guard_trace.pop(name, None)
        return verdict


class SlaveGuardOnlyScheduler(_DisabledGuardTrace, EnhancedDegradedFirstScheduler):
    """EDF with locality preservation only (rack awareness disabled)."""

    name = "EDF-SLAVE"
    _disabled_quantities = ("t_r", "mean_t_r", "rack_threshold")

    def assign_to_rack(self, rack_id: int, now: float) -> bool:
        del rack_id, now
        return True


class RackGuardOnlyScheduler(_DisabledGuardTrace, EnhancedDegradedFirstScheduler):
    """EDF with rack awareness only (locality preservation disabled)."""

    name = "EDF-RACK"
    _disabled_quantities = ("t_s", "mean_t_s")

    def assign_to_slave(self, job: JobTaskState, slave_id: int) -> bool:
        del job, slave_id
        return True


class DelayScheduler(Scheduler):
    """Locality-first with delay scheduling (Zaharia et al., EuroSys'10).

    The paper cites delay scheduling as the locality technique for
    multi-user clusters: a job with no local task for the heartbeating
    slave *waits* (skips the slot) for up to ``max_delay`` seconds of
    skipped opportunities before accepting a non-local task.  Degraded
    tasks keep LF's lowest priority.  Included as a stronger locality
    baseline: delaying improves locality but does nothing about the
    end-of-phase degraded-read competition, so degraded-first scheduling
    still wins in failure mode.
    """

    name = "LF-DELAY"

    #: Seconds of skipped heartbeats a job tolerates before going remote.
    max_delay = 9.0

    def __init__(self, context) -> None:
        super().__init__(context)
        self._first_skip_at: dict[int, float] = {}

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        for job in jobs:
            while free_map_slots > 0:
                assignment = self._try_local(job, slave_id)
                delayed = assignment is None
                if delayed and self._delay_expired(job, now):
                    assignment = self._try_remote(job, slave_id) or self._try_degraded(
                        job, slave_id
                    )
                if assignment is None:
                    break
                if assignment.category.is_local:
                    self._first_skip_at.pop(job.job_id, None)
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign",
                        reason="delay-expired" if delayed else "local",
                        category=assignment.category.value,
                        block=str(assignment.block),
                    )
            if free_map_slots == 0:
                break
        return assignments

    def _delay_expired(self, job: JobTaskState, now: float) -> bool:
        if not job.has_unassigned_maps():
            return False
        first_skip = self._first_skip_at.setdefault(job.job_id, now)
        return now - first_skip >= self.max_delay


#: All ablation variants, for registration.
ABLATION_SCHEDULERS = (
    EagerDegradedScheduler,
    UncappedDegradedFirstScheduler,
    SlaveGuardOnlyScheduler,
    RackGuardOnlyScheduler,
    DelayScheduler,
)
