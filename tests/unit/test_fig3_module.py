"""Unit tests for the Figure 3 walk-through helpers."""

from __future__ import annotations

import pytest

from repro.experiments.fig3_motivating import (
    BANDWIDTH,
    BLOCK_SIZE,
    PROCESS_TIME,
    TRANSFER_TIME,
    ExampleTask,
    degraded_first_schedule,
    example_topology,
    locality_first_schedule,
    main,
)


class TestConstants:
    def test_transfer_time_consistent(self):
        assert BLOCK_SIZE / BANDWIDTH == pytest.approx(TRANSFER_TIME)

    def test_process_time_matches_paper(self):
        assert PROCESS_TIME == 10.0


class TestTopology:
    def test_five_nodes_two_racks(self):
        topo = example_topology()
        assert topo.num_nodes == 5
        assert topo.num_racks == 2
        assert topo.nodes_in_rack(0) == (0, 1, 2)
        assert topo.nodes_in_rack(1) == (3, 4)
        assert topo.node(0).map_slots == 2


class TestSchedules:
    def test_twelve_tasks_each(self):
        for schedule in (locality_first_schedule(), degraded_first_schedule()):
            tasks = [task for tasks in schedule.values() for task in tasks]
            assert len(tasks) == 12

    def test_four_degraded_each(self):
        for schedule in (locality_first_schedule(), degraded_first_schedule()):
            degraded = [
                task
                for tasks in schedule.values()
                for task in tasks
                if task.is_degraded
            ]
            assert len(degraded) == 4

    def test_same_task_names_in_both(self):
        lf_names = sorted(
            task.name for tasks in locality_first_schedule().values() for task in tasks
        )
        df_names = sorted(
            task.name for tasks in degraded_first_schedule().values() for task in tasks
        )
        assert lf_names == df_names

    def test_lf_degraded_last_per_node(self):
        for tasks in locality_first_schedule().values():
            degraded_positions = [i for i, t in enumerate(tasks) if t.is_degraded]
            assert all(pos == len(tasks) - 1 for pos in degraded_positions)

    def test_example_task_flags(self):
        assert not ExampleTask("x").is_degraded
        assert ExampleTask("x", download_from=2).is_degraded


class TestReport:
    def test_main_report(self):
        report = main()
        assert "40 s" in report
        assert "30 s" in report
        assert "25%" in report
