#!/usr/bin/env python
"""Scripted churn: crash, slowdown and recovery on a timeline.

The paper fails a node once, before the job starts.  Real clusters churn:
nodes crash mid-job, limp along at reduced speed, and come back.  This
example scripts exactly that with a :class:`FailureSchedule` -- a node
crashes at t=30 s (the master only notices after heartbeat expiry),
another node runs 3x slow for a while, and the crashed node rejoins at
t=120 s -- then runs the same trace under all three schedulers and
reports what the fault-tolerance machinery observed.

Run:  python examples/failure_schedule.py
"""

from repro import (
    CodeParams,
    FailEvent,
    FailureSchedule,
    JobConfig,
    RecoverEvent,
    SimulationConfig,
    SlowdownEvent,
    run_simulation,
)
from repro.cluster.network import MB, mbps

SCHEDULE = FailureSchedule(
    events=(
        FailEvent(at=30.0, node=3),
        SlowdownEvent(at=40.0, node=7, factor=3.0, duration=60.0),
        RecoverEvent(at=120.0, node=3),
    )
)

BASE = SimulationConfig(
    num_nodes=12,
    num_racks=4,
    map_slots=2,
    code=CodeParams(8, 6),
    block_size=64 * MB,
    rack_bandwidth=mbps(200),
    jobs=(JobConfig(num_blocks=240, num_reduce_tasks=6),),
    failure_schedule=SCHEDULE,
    heartbeat_expiry=15.0,
    speculative=True,
    seed=13,
)


def main() -> None:
    print("schedule:")
    print(SCHEDULE.to_json(indent=2))
    print()
    for scheduler in ("LF", "BDF", "EDF"):
        result = run_simulation(BASE.with_scheduler(scheduler))
        job = result.job(0)
        detection = result.faults.detections[0]
        recovery = result.faults.recoveries[0]
        print(
            f"{scheduler}: runtime={job.runtime:.1f} s "
            f"detected node {detection.node} after {detection.latency:.1f} s, "
            f"recovered at {recovery.at:.0f} s "
            f"(reclaimed {recovery.reclaimed_tasks} degraded tasks); "
            f"killed={job.killed_attempts} "
            f"speculative launched/killed="
            f"{job.speculative_launched}/{job.speculative_killed}"
        )
    print(
        "\nThe crash is silent: the master declares the node dead only after"
        "\nheartbeat_expiry seconds without a heartbeat, requeues its running"
        "\ntasks, and reroutes its blocks through degraded reads until the"
        "\nnode rejoins at t=120 s."
    )


if __name__ == "__main__":
    main()
