"""Open-loop workload generation: continuous job arrival streams.

The paper's experiments submit jobs in a closed burst; reliability campaigns
need the opposite regime -- an **open loop**, where jobs keep arriving at
externally fixed times regardless of how the cluster is coping.  Open-loop
traffic is what makes saturation observable: a scheduler whose service rate
falls below the arrival rate accumulates an ever-growing queue (sojourn
times trend upward) instead of silently stretching the burst's makespan.

An :class:`ArrivalProcess` turns an RNG and a horizon into a tuple of
:class:`~repro.mapreduce.config.JobConfig` entries with ``submit_time`` set;
the existing FIFO multi-job plumbing in the master does the rest.  Two
processes are provided:

* :class:`PoissonArrivals` -- memoryless arrivals with mean spacing
  ``mean_interarrival``; each arrival draws a job template from the
  (optionally weighted) multi-tenant ``templates`` tuple.  This is the
  M/G/- regime the MDS-queue analysis of degraded reads assumes.
* :class:`TraceArrivals` -- replays explicit submit times (e.g. from a
  production trace), cycling through ``templates``.

Draws come from named :class:`~repro.sim.rng.RngStreams` substreams, so a
``(process, seed)`` pair always yields the same arrival stream, and both
processes serialise through ``to_dict()`` / :func:`arrivals_from_dict` like
the failure models they ride alongside.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

from repro.mapreduce.config import JobConfig
from repro.sim.rng import RngStreams

#: ``kind`` tag -> arrival-process class, for dict/JSON round-trips.
ARRIVAL_KINDS: dict[str, type["ArrivalProcess"]] = {}


def _register(cls: type["ArrivalProcess"]) -> type["ArrivalProcess"]:
    ARRIVAL_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: a deterministic ``(rng, horizon) -> jobs`` map."""

    kind: ClassVar[str] = ""

    def generate(self, rng: RngStreams, horizon: float) -> tuple[JobConfig, ...]:
        """Jobs with ``submit_time < horizon``, in submission order."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """The ``kind``-tagged dict this process round-trips through."""
        raise NotImplementedError


def arrivals_from_dict(payload: dict) -> ArrivalProcess:
    """Rebuild an arrival process from its ``to_dict()`` form."""
    fields = dict(payload)
    kind = fields.pop("kind", None)
    if kind not in ARRIVAL_KINDS:
        raise ValueError(
            f"arrival kind must be one of {sorted(ARRIVAL_KINDS)}, got {kind!r}"
        )
    return ARRIVAL_KINDS[kind]._from_fields(fields)


def _templates_from(fields: dict) -> tuple[JobConfig, ...]:
    return tuple(
        job if isinstance(job, JobConfig) else JobConfig(**job)
        for job in fields.get("templates", ())
    ) or (JobConfig(),)


@_register
@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson job arrivals over multi-tenant templates.

    Parameters
    ----------
    mean_interarrival:
        Mean spacing between consecutive submissions, seconds.
    templates:
        The tenant job mix; each arrival picks one template (its
        ``submit_time`` is overridden).
    weights:
        Relative tenant probabilities; None means uniform.
    """

    kind: ClassVar[str] = "poisson"

    mean_interarrival: float = 600.0
    templates: tuple[JobConfig, ...] = (JobConfig(),)
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError(
                f"mean_interarrival must be positive, got {self.mean_interarrival}"
            )
        if not self.templates:
            raise ValueError("need at least one job template")
        if self.weights is not None:
            if len(self.weights) != len(self.templates):
                raise ValueError(
                    f"{len(self.weights)} weights for {len(self.templates)} templates"
                )
            if any(weight < 0 for weight in self.weights) or sum(self.weights) <= 0:
                raise ValueError(f"weights must be non-negative and sum > 0: {self.weights}")

    def generate(self, rng: RngStreams, horizon: float) -> tuple[JobConfig, ...]:
        streams = rng.spawn(f"workload:{self.kind}")
        arrivals = streams.stream("arrivals")
        tenants = streams.stream("tenant")
        weights = self.weights or (1.0,) * len(self.templates)
        total = sum(weights)
        jobs: list[JobConfig] = []
        at = arrivals.expovariate(1.0 / self.mean_interarrival)
        while at < horizon:
            mark, template = tenants.random() * total, self.templates[-1]
            for candidate, weight in zip(self.templates, weights):
                mark -= weight
                if mark < 0:
                    template = candidate
                    break
            jobs.append(dataclasses.replace(template, submit_time=at))
            at += arrivals.expovariate(1.0 / self.mean_interarrival)
        return tuple(jobs)

    def to_dict(self) -> dict:
        payload: dict = {
            "kind": self.kind,
            "mean_interarrival": self.mean_interarrival,
            "templates": [dataclasses.asdict(job) for job in self.templates],
        }
        if self.weights is not None:
            payload["weights"] = list(self.weights)
        return payload

    @classmethod
    def _from_fields(cls, fields: dict) -> "PoissonArrivals":
        weights = fields.get("weights")
        return cls(
            mean_interarrival=fields.get("mean_interarrival", 600.0),
            templates=_templates_from(fields),
            weights=None if weights is None else tuple(weights),
        )


@_register
@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay explicit submit times, cycling through the template mix."""

    kind: ClassVar[str] = "trace"

    submit_times: tuple[float, ...] = ()
    templates: tuple[JobConfig, ...] = (JobConfig(),)

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("need at least one job template")
        if any(at < 0 for at in self.submit_times):
            raise ValueError(f"negative submit time in {self.submit_times}")

    def generate(self, rng: RngStreams, horizon: float) -> tuple[JobConfig, ...]:
        del rng  # the trace is the realisation
        return tuple(
            dataclasses.replace(
                self.templates[index % len(self.templates)], submit_time=at
            )
            for index, at in enumerate(sorted(self.submit_times))
            if at < horizon
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "submit_times": list(self.submit_times),
            "templates": [dataclasses.asdict(job) for job in self.templates],
        }

    @classmethod
    def _from_fields(cls, fields: dict) -> "TraceArrivals":
        return cls(
            submit_times=tuple(fields.get("submit_times", ())),
            templates=_templates_from(fields),
        )
