"""Table I: average runtime of each task type in the single-job scenario.

For each job (WordCount, Grep, LineCount) and each scheduler (LF, EDF),
report the mean runtime of normal map tasks (local and remote), degraded
map tasks, and reduce tasks -- the same breakdown as the paper's Table I.

Paper shapes: EDF cuts the degraded-task mean by ~35-48% and the reduce
mean by ~26%, while normal map tasks are essentially unchanged.
"""

from __future__ import annotations

from repro.experiments.fig9_testbed import build_cluster, collect_task_breakdown
from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.testbed.engine import TestbedCluster, TestbedJobResult

#: The table's row structure: label -> (kind, categories).
ROWS = (
    (
        "Normal map",
        TaskKind.MAP,
        (MapTaskCategory.NODE_LOCAL, MapTaskCategory.RACK_LOCAL, MapTaskCategory.REMOTE),
    ),
    ("Degraded map", TaskKind.MAP, (MapTaskCategory.DEGRADED,)),
    ("Reduce", TaskKind.REDUCE, ()),
)


def run_table1(
    cluster: TestbedCluster | None = None, runs: int | None = None
) -> dict[str, dict[str, TestbedJobResult]]:
    """Collect the runs; returns ``{job: {scheduler: merged result}}``."""
    return collect_task_breakdown(cluster or build_cluster(), runs)


def format_table(results: dict[str, dict[str, TestbedJobResult]]) -> str:
    """Render Table I as text."""
    jobs = list(results)
    title = "Table I: average task runtime (s) in the single-job scenario"
    lines = [title, "=" * len(title)]
    header = f"{'task type':>14}"
    for job_name in jobs:
        header += f"  {job_name + ' LF':>14}  {job_name + ' EDF':>14}"
    lines.append(header)
    for label, kind, categories in ROWS:
        row = f"{label:>14}"
        for job_name in jobs:
            for scheduler in ("LF", "EDF"):
                mean = results[job_name][scheduler].mean_runtime(kind, *categories)
                row += f"  {mean:>14.3f}"
        lines.append(row)
    return "\n".join(lines)


def main() -> str:
    """Run and render Table I."""
    return format_table(run_table1())


if __name__ == "__main__":
    print(main())
