"""Property-based tests of scheduler invariants.

These drive the schedulers through synthetic heartbeat sequences (no
simulator) and assert structural invariants of the assignment stream.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.scheduler import SchedulerContext, make_scheduler
from repro.core.tasks import JobTaskState
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapTaskCategory
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


def build(seed, num_blocks, fail_node=0):
    topology = ClusterTopology.from_rack_sizes([3, 3], map_slots=2)
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=num_blocks,
        placement="random", rng=RngStreams(seed),
    )
    failed = frozenset({fail_node})
    view = cluster.failure_view(failed)
    config = JobConfig(num_blocks=num_blocks, num_reduce_tasks=2)
    state = JobTaskState(0, config, view, cluster.block_map, topology)
    context = SchedulerContext(
        topology=topology,
        live_nodes=frozenset(topology.node_ids()) - failed,
        expected_degraded_read_time=4.0,
        map_time_mean=config.map_time_mean,
        reduce_slowstart=0.05,
    )
    return state, context, cluster


def drain(scheduler, state, context, heartbeat_slots):
    """Feed heartbeats until all maps are assigned; return the stream."""
    stream = []
    live = sorted(context.live_nodes)
    now = 0.0
    stalls = 0
    while state.has_unassigned_maps():
        progressed = False
        for slave in live:
            for assignment in scheduler.assign_maps(slave, heartbeat_slots, [state], now):
                stream.append(assignment)
                progressed = True
        now += 3.0
        if not progressed:
            stalls += 1
            assert stalls < 500, "scheduler stalled with pending tasks"
        else:
            stalls = 0
    return stream


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(["LF", "BDF", "EDF"]),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=1, max_value=3),
)
def test_every_task_assigned_exactly_once(name, seed, num_blocks, slots):
    state, context, _ = build(seed, num_blocks)
    scheduler = make_scheduler(name, context)
    stream = drain(scheduler, state, context, slots)
    blocks = [assignment.block for assignment in stream]
    assert len(blocks) == num_blocks
    assert len(set(blocks)) == num_blocks


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(["LF", "BDF", "EDF"]),
    st.integers(min_value=0, max_value=2**16),
)
def test_categories_are_consistent_with_storage(name, seed):
    """Every assignment's category matches block location vs slave."""
    state, context, cluster = build(seed, 24)
    scheduler = make_scheduler(name, context)
    stream = drain(scheduler, state, context, 2)
    lost = set(cluster.block_map.lost_native_blocks({0}))
    for assignment in stream:
        home = cluster.node_of(assignment.block)
        topology = context.topology
        if assignment.block in lost:
            assert assignment.category is MapTaskCategory.DEGRADED
        elif home == assignment.slave_id:
            assert assignment.category is MapTaskCategory.NODE_LOCAL
        elif topology.same_rack(home, assignment.slave_id):
            assert assignment.category is MapTaskCategory.RACK_LOCAL
        else:
            assert assignment.category is MapTaskCategory.REMOTE


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(["BDF", "EDF"]),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=3),
)
def test_degraded_first_pacing_bound(name, seed, slots):
    """At every prefix of the launch stream, m_d/M_d <= m/M + 1/M_d.

    This is the paper's even-spreading guarantee: degraded launches never
    run ahead of overall progress by more than the one launch the pacing
    rule just admitted.
    """
    state, context, _ = build(seed, 30)
    total_maps = state.M
    total_degraded = state.M_d
    if total_degraded == 0:
        return
    scheduler = make_scheduler(name, context)
    stream = drain(scheduler, state, context, slots)
    launched = 0
    launched_degraded = 0
    for assignment in stream:
        launched += 1
        if assignment.category is MapTaskCategory.DEGRADED:
            launched_degraded += 1
            # The pacing rule admitted this launch, so before it:
            # (m_d - 1)/M_d <= (m - 1)/M.
            assert (launched_degraded - 1) * total_maps <= (launched - 1) * total_degraded


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**16))
def test_lf_never_schedules_degraded_before_normals_exhausted_per_heartbeat(seed):
    """Within one LF heartbeat, degraded tasks only fill leftover slots."""
    state, context, _ = build(seed, 24)
    scheduler = make_scheduler("LF", context)
    live = sorted(context.live_nodes)
    now = 0.0
    while state.has_unassigned_maps():
        for slave in live:
            assignments = scheduler.assign_maps(slave, 2, [state], now)
            seen_degraded = False
            for assignment in assignments:
                if assignment.category is MapTaskCategory.DEGRADED:
                    seen_degraded = True
                elif seen_degraded:
                    raise AssertionError("normal task after degraded in one heartbeat")
        now += 3.0
