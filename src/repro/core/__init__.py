"""The paper's contribution: MapReduce task schedulers for failure mode.

* :mod:`repro.core.tasks` -- per-job bookkeeping of unassigned map tasks,
  split into normal (local/remote) and degraded pools, with the launch
  counters ``m``, ``M``, ``m_d``, ``M_d`` used by the pacing rule.
* :mod:`repro.core.scheduler` -- the heartbeat-driven scheduler interface,
  shared reduce-slot assignment, and the :class:`PolicyRegistry` every
  policy lookup goes through.
* :mod:`repro.core.locality_first` -- Algorithm 1 (Hadoop default, LF).
* :mod:`repro.core.degraded_first` -- Algorithm 2 (basic degraded-first, BDF).
* :mod:`repro.core.enhanced` -- Algorithm 3 (enhanced degraded-first, EDF)
  with locality preservation (``ASSIGNTOSLAVE``) and rack awareness
  (``ASSIGNTORACK``).
* :mod:`repro.core.extras` -- ablation variants isolating each design choice.
* :mod:`repro.core.zoo` -- the scheduler zoo: RANDOM/FIFO baselines,
  work-stealing, critical-path, task-cloning and heterogeneity-aware
  policies beyond the paper's three.
"""

from repro.core.degraded_first import BasicDegradedFirstScheduler
from repro.core.enhanced import EnhancedDegradedFirstScheduler
from repro.core.locality_first import LocalityFirstScheduler
from repro.core.scheduler import (
    POLICIES,
    PolicyRegistry,
    Scheduler,
    SchedulerContext,
    make_scheduler,
    register_scheduler,
    registered_schedulers,
)
from repro.core.tasks import JobTaskState
from repro.core.zoo import (
    CriticalPathScheduler,
    FifoScheduler,
    HeterogeneityAwareScheduler,
    RandomScheduler,
    TaskCloningScheduler,
    WorkStealingScheduler,
)

__all__ = [
    "POLICIES",
    "BasicDegradedFirstScheduler",
    "CriticalPathScheduler",
    "EnhancedDegradedFirstScheduler",
    "FifoScheduler",
    "HeterogeneityAwareScheduler",
    "JobTaskState",
    "LocalityFirstScheduler",
    "PolicyRegistry",
    "RandomScheduler",
    "Scheduler",
    "SchedulerContext",
    "TaskCloningScheduler",
    "WorkStealingScheduler",
    "make_scheduler",
    "register_scheduler",
    "registered_schedulers",
]
