"""Campaign resilience acceptance tests.

The three failure stories the crash-safe engine exists for, end to end:

* a pool worker SIGKILLed from outside mid-trial costs a retry, never the
  batch -- the campaign still completes with full accounting;
* a driver SIGINTed mid-campaign checkpoints to its journal and exits 5,
  and ``repro campaign resume`` produces a report **bit-identical** to an
  uninterrupted run;
* a cache entry with a flipped byte is detected, quarantined, and
  recomputed -- and the final report is again bit-identical.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from repro.cli import main
from repro.experiments.campaign import CampaignEngine, CampaignPolicy
from repro.mapreduce.config import SimulationConfig

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

#: The sweep every CLI test in this file runs: small enough to finish in
#: seconds, big enough that an interrupt lands mid-flight.
SWEEP_FLAGS = [
    "--schedulers",
    "LF,EDF",
    "--seeds",
    "3",
    "--blocks",
    "60",
    "--backoff",
    "0.0",
]


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_WORKERS"] = "2"
    return env


def _spawn_cli(args: list[str]) -> subprocess.Popen:
    code = "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))"
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


@dataclass(frozen=True)
class VictimRunner:
    """Trial 1's first attempt parks in a worker and reports its pid so the
    test can SIGKILL it from outside; the retry returns immediately."""

    state_dir: str

    def __call__(self, config: SimulationConfig) -> dict:
        if config.seed == 1:
            marker = os.path.join(self.state_dir, "attempted")
            if not os.path.exists(marker):
                with open(marker, "w") as handle:
                    handle.write("first attempt\n")
                with open(os.path.join(self.state_dir, "victim.pid"), "w") as handle:
                    handle.write(str(os.getpid()))
                time.sleep(60.0)
        return {"seed": config.seed, "cube": config.seed**3}


class TestExternalWorkerKill:
    def test_sigkilled_worker_retries_and_completes(self, tmp_path):
        state_dir = str(tmp_path)
        pid_path = os.path.join(state_dir, "victim.pid")

        def assassin() -> None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if os.path.exists(pid_path):
                    time.sleep(0.1)  # let the worker settle into its sleep
                    os.kill(int(open(pid_path).read()), signal.SIGKILL)
                    return
                time.sleep(0.02)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        configs = [SimulationConfig(seed=index) for index in range(5)]
        outcome = CampaignEngine(
            runner=VictimRunner(state_dir=state_dir),
            policy=CampaignPolicy(
                retries=2, backoff=0.0, workers=2, on_error="collect"
            ),
        ).run(configs)
        killer.join(timeout=30.0)

        assert outcome.counters.done == 5
        assert outcome.counters.failed == 0
        assert outcome.counters.quarantined == 0
        assert outcome.counters.retried >= 1
        assert outcome.counters.consistent()
        assert outcome.results[1] == {"seed": 1, "cube": 1}


class TestInterruptResume:
    def test_sigint_checkpoints_and_resume_is_bit_identical(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        interrupted_report = str(tmp_path / "interrupted.json")
        golden_report = str(tmp_path / "golden.json")

        process = _spawn_cli(
            ["campaign", "run", *SWEEP_FLAGS, "--journal", journal]
        )
        # Wait for at least one journaled trial, then interrupt the driver.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            if (
                os.path.exists(journal)
                and sum(1 for _ in open(journal)) >= 2  # header + 1 trial
            ):
                process.send_signal(signal.SIGINT)
                break
            time.sleep(0.05)
        stdout, stderr = process.communicate(timeout=180)

        if process.returncode == 5:
            assert "checkpointed" in stderr
            assert "resume" in stderr
        else:
            # The sweep outran the watcher (tiny machine variance); the
            # journal is then simply complete and resume replays all of it.
            assert process.returncode == 0, stderr

        resume_code = main(
            [
                "campaign",
                "resume",
                *SWEEP_FLAGS,
                "--journal",
                journal,
                "--report",
                interrupted_report,
            ]
        )
        assert resume_code == 0

        golden_code = main(
            ["campaign", "run", *SWEEP_FLAGS, "--report", golden_report]
        )
        assert golden_code == 0

        with open(interrupted_report, "rb") as handle:
            resumed_bytes = handle.read()
        with open(golden_report, "rb") as handle:
            golden_bytes = handle.read()
        assert resumed_bytes == golden_bytes

    def test_run_refuses_populated_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--schedulers",
                    "LF",
                    "--seeds",
                    "1",
                    "--blocks",
                    "60",
                    "--journal",
                    journal,
                ]
            )
            == 0
        )
        code = main(
            [
                "campaign",
                "run",
                "--schedulers",
                "LF",
                "--seeds",
                "1",
                "--blocks",
                "60",
                "--journal",
                journal,
            ]
        )
        assert code == 2
        assert "resume" in capsys.readouterr().err


class TestCacheCorruptionEndToEnd:
    def test_flipped_byte_recomputed_bit_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first_report = str(tmp_path / "first.json")
        second_report = str(tmp_path / "second.json")
        flags = [
            "campaign",
            "run",
            "--schedulers",
            "LF",
            "--seeds",
            "3",
            "--blocks",
            "60",
            "--cache-dir",
            cache_dir,
        ]
        assert main([*flags, "--report", first_report]) == 0

        # Flip one byte inside every cached payload.
        flipped = 0
        for root, dirs, files in os.walk(cache_dir):
            dirs[:] = [name for name in dirs if name != "quarantine"]
            for name in files:
                path = os.path.join(root, name)
                raw = bytearray(open(path, "rb").read())
                target = raw.find(b'"payload"') + 20
                raw[target] = raw[target] ^ 0x01
                open(path, "wb").write(bytes(raw))
                flipped += 1
        assert flipped >= 3

        assert main([*flags, "--report", second_report]) == 0
        quarantine = os.path.join(cache_dir, "quarantine")
        assert os.path.isdir(quarantine)
        assert len(os.listdir(quarantine)) == flipped

        with open(first_report, "rb") as handle:
            first_bytes = handle.read()
        with open(second_report, "rb") as handle:
            second_bytes = handle.read()
        assert first_bytes == second_bytes
