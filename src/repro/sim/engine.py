"""A deterministic generator-based discrete-event engine.

The engine follows the classic process-interaction style (SimPy, CSIM):
simulation *processes* are Python generators that ``yield`` either a
:class:`Timeout` (advance virtual time) or an :class:`Event` (block until it
fires).  The engine maintains a single event heap keyed by
``(time, sequence)`` so that simultaneous events run in schedule order,
making every run bit-for-bit reproducible.

Heap entries are plain tuples ``(time, seq, kind, target, payload, epoch)``
dispatched inline by :meth:`Simulator.run` -- no closure object is
allocated per scheduled step, which is the engine's dominant cost in large
sweeps.  ``kind`` is ``"send"``/``"throw"`` for process resumes (``target``
is the process, ``epoch`` guards against stale wake-ups) or ``"call"`` for
plain callbacks scheduled via :meth:`Simulator.call_at`.  The sequence
number is unique, so tuple comparison never reaches the non-orderable
fields.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 2.0))
>>> _ = sim.spawn(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. re-firing an event)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    fires it, waking every process that yielded it.  Waiting on an already
    fired event resumes the waiter immediately with the stored value.
    """

    __slots__ = ("_sim", "_fired", "_value", "_error", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._fired = False
        self._value: Any = None
        self._error: BaseException | None = None
        # Insertion-ordered waiter set: wake order matches append order (as
        # a list would give) while discarding a waiter stays O(1).
        self._waiters: dict[Process, None] = {}
        self.name = name

    @property
    def fired(self) -> bool:
        """Whether the event has already fired."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with; only valid once fired."""
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event successfully, waking all waiters this instant."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, {}
        for process in waiters:
            self._sim._schedule_resume(process, value)

    def fail(self, error: BaseException) -> None:
        """Fire the event with an exception; waiters have it raised in them."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._error = error
        waiters, self._waiters = self._waiters, {}
        for process in waiters:
            self._sim._schedule_throw(process, error)

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            if self._error is not None:
                self._sim._schedule_throw(process, self._error)
            else:
                self._sim._schedule_resume(process, self._value)
        else:
            self._waiters[process] = None

    def _discard_waiter(self, process: "Process") -> None:
        self._waiters.pop(process, None)


class Timeout:
    """Yielded by a process to sleep for ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = delay


class AllOf:
    """Yielded to wait until *all* of the given events have fired.

    Resumes with a list of the events' values in the given order.
    """

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = list(events)


class Process:
    """A running simulation process wrapping a generator."""

    __slots__ = ("_sim", "_generator", "finished", "name", "_waiting_on", "_epoch")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.finished: Event = Event(sim, name=f"finished:{name}")
        self.name = name
        self._waiting_on: Event | None = None
        # Incremented every time the process runs; scheduled resumes capture
        # the epoch they were armed in, so a stale wake-up (e.g. a timeout
        # that was outrun by an interrupt) is dropped instead of resuming
        # the process a second time.
        self._epoch = 0

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.finished.fired:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self._sim._schedule_throw(self, Interrupt(cause))

    def _step(self, kind: str, payload: Any) -> None:
        if self.finished.fired:
            return
        self._epoch += 1
        self._waiting_on = None
        try:
            if kind == "throw":
                yielded = self._generator.throw(payload)
            else:
                yielded = self._generator.send(payload)
        except StopIteration as stop:
            self.finished.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.finished.succeed(None)
            return
        if type(yielded) is Timeout:
            # Fast path for the dominant yield kind: push the resume entry
            # inline, skipping the isinstance ladder and the method call.
            # The tuple is exactly what _schedule_resume would build.
            # (Timeout is never subclassed; _handle_yield keeps the
            # isinstance branch for any other caller.)
            sim = self._sim
            sim._sequence = seq = sim._sequence + 1
            _heappush(
                sim._heap,
                (sim._now + yielded.delay, seq, "send", self, None, self._epoch),
            )
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._sim._schedule_resume(self, None, delay=yielded.delay)
            return
        if isinstance(yielded, Event):
            self._waiting_on = yielded
            yielded._add_waiter(self)
            return
        if isinstance(yielded, Process):
            self._waiting_on = yielded.finished
            yielded.finished._add_waiter(self)
            return
        if isinstance(yielded, AllOf):
            gate = Event(self._sim, name="allof")
            remaining = len(yielded.events)
            if remaining == 0:
                self._sim._schedule_resume(self, [])
                return
            values: list[Any] = [None] * remaining
            state = {"remaining": remaining}

            def arm(index: int, event: Event) -> None:
                def on_fire(value: Any) -> None:
                    values[index] = value
                    state["remaining"] -= 1
                    if state["remaining"] == 0:
                        gate.succeed(values)

                self._sim._add_callback(event, on_fire)

            for index, event in enumerate(yielded.events):
                arm(index, event)
            self._waiting_on = gate
            gate._add_waiter(self)
            return
        raise SimulationError(f"process {self.name!r} yielded unsupported {yielded!r}")


class Simulator:
    """The event loop: a heap of timestamped tuple entries and a virtual clock.

    Each heap entry is ``(time, seq, kind, target, payload, epoch)``;
    :meth:`run` dispatches entries inline instead of calling per-entry
    closures (see the module docstring).
    """

    __slots__ = ("_now", "_heap", "_sequence", "dispatched", "monitor")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, str, Any, Any, int]] = []
        self._sequence = 0
        #: Callbacks dispatched so far -- the engine's always-on profiling
        #: counter (an int increment per event; feeds events/sec reporting).
        self.dispatched = 0
        #: Optional sanitizer (see :mod:`repro.check`); when set, its
        #: ``on_dispatch(time)`` sees every dispatched heap entry.  The hook
        #: observes only -- it must never schedule or mutate state -- except
        #: that it may raise to abort a runaway trial.
        self.monitor = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float) -> Timeout:
        """Create a timeout; for symmetry with :meth:`event`."""
        return Timeout(delay)

    def all_of(self, events: list[Event]) -> AllOf:
        """Create a conjunction wait on several events."""
        return AllOf(events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator; first step runs at ``now``."""
        process = Process(self, generator, name=name)
        self._schedule_resume(process, None)
        return process

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a plain callback at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} before now {self._now}")
        self._push(time, fn)

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a plain callback after ``delay`` units."""
        self.call_at(self._now + delay, fn)

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains or virtual time reaches ``until``."""
        heap = self._heap
        pop = _heappop
        monitor = self.monitor
        count = 0
        try:
            if until is None:
                # Run-to-drain loop: no horizon, so skip the per-entry peek
                # and bound check entirely.
                while heap:
                    time, _, kind, target, payload, epoch = pop(heap)
                    self._now = time
                    count += 1
                    if monitor is not None:
                        monitor.on_dispatch(time)
                    if kind == "call":
                        target()
                    elif target._epoch == epoch:
                        # A stale wake-up (the process ran since this entry
                        # was armed, e.g. a timeout outrun by an interrupt)
                        # is dropped without resuming the process again.
                        target._step(kind, payload)
                return
            while heap:
                time = heap[0][0]
                if time > until:
                    self._now = until
                    return
                _, _, kind, target, payload, epoch = pop(heap)
                self._now = time
                count += 1
                if monitor is not None:
                    monitor.on_dispatch(time)
                if kind == "call":
                    target()
                elif target._epoch == epoch:
                    # Same stale-wake-up guard as the drain loop above.
                    target._step(kind, payload)
        finally:
            # Batched so the hot loop touches one local instead of an
            # attribute per event; exceptions still leave the count right.
            self.dispatched += count
        if until is not None and until > self._now:
            self._now = until

    def peek(self) -> float | None:
        """Time of the next scheduled callback, or None when idle."""
        if not self._heap:
            return None
        return self._heap[0][0]

    # -- internal plumbing -------------------------------------------------

    def _push(self, time: float, fn: Callable[[], None]) -> None:
        self._sequence = seq = self._sequence + 1
        _heappush(self._heap, (time, seq, "call", fn, None, 0))

    def _schedule_resume(self, process: Process, value: Any, delay: float = 0.0) -> None:
        self._sequence = seq = self._sequence + 1
        _heappush(
            self._heap,
            (self._now + delay, seq, "send", process, value, process._epoch),
        )

    def _schedule_throw(self, process: Process, error: BaseException) -> None:
        self._sequence = seq = self._sequence + 1
        _heappush(
            self._heap,
            (self._now, seq, "throw", process, error, process._epoch),
        )

    def _add_callback(self, event: Event, fn: Callable[[Any], None]) -> None:
        """Attach a plain callback to an event (fires immediately if fired)."""
        if event.fired:
            if event._error is not None:
                raise event._error
            self._push(self._now, lambda: fn(event._value))
            return

        class _CallbackShim:
            """Quacks like a Process for Event's waiter set."""

            __slots__ = ()
            _epoch = 0  # callbacks are one-shot; no staleness to track
            finished = event  # only `.fired` is consulted, never re-fired

            def _step(self, kind: str, payload: Any) -> None:
                if kind == "throw":
                    raise payload
                fn(payload)

        event._waiters[_CallbackShim()] = None  # type: ignore[index]
