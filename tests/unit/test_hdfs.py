"""Unit tests for the HdfsRaidCluster facade."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.storage.hdfs import HdfsRaidCluster


@pytest.fixture
def cluster(rng):
    topology = ClusterTopology.from_rack_sizes([3, 3, 3])
    return HdfsRaidCluster(
        topology, CodeParams(6, 4), num_native_blocks=32, placement="declustered", rng=rng
    )


class TestConstruction:
    def test_zero_blocks_rejected(self, rng):
        topology = ClusterTopology.from_rack_sizes([3, 3, 3])
        with pytest.raises(ValueError):
            HdfsRaidCluster(topology, CodeParams(6, 4), 0, "random", rng)

    def test_block_map_complete(self, cluster):
        # 32 natives / k=4 -> 8 stripes x 6 blocks.
        assert len(cluster.block_map.all_blocks()) == 48


class TestFailureView:
    def test_partition_is_exact(self, cluster):
        view = cluster.failure_view(frozenset({3}))
        lost = set(view.lost_blocks)
        available = set(view.available_blocks)
        assert lost.isdisjoint(available)
        assert len(lost) + len(available) == 32
        for block in lost:
            assert cluster.node_of(block) == 3

    def test_no_failure_view(self, cluster):
        view = cluster.failure_view(frozenset())
        assert view.lost_blocks == ()
        assert len(view.available_blocks) == 32

    def test_unrecoverable_failure_raises(self, cluster):
        stripe_nodes = [s.node_id for s in cluster.block_map.stripe_blocks(0)]
        with pytest.raises(RuntimeError):
            cluster.failure_view(frozenset(stripe_nodes[:3]))

    def test_local_native_blocks(self, cluster):
        for node_id in cluster.topology.node_ids():
            for block in cluster.local_native_blocks(node_id):
                assert cluster.node_of(block) == node_id
                assert block.is_native
