"""Benchmarks: Figure 8, basic vs enhanced degraded-first scheduling.

Paper shapes asserted: BDF launches more off-node ("remote") tasks than LF
while EDF launches fewer; both slash degraded-read time (EDF at least as
much); both cut runtime; and in the extreme case EDF's cut exceeds BDF's.

The four sub-figures are different statistics over the same simulation
runs, so a module-scoped fixture computes the runs once.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.experiments.fig8_bdf_edf import (
    Fig8Data,
    run_fig8a,
    run_fig8b,
    run_fig8c,
    run_fig8d,
)


@pytest.fixture(scope="module")
def data():
    return Fig8Data()


def test_fig8a(benchmark, data):
    table = one_shot(benchmark, run_fig8a, data=data)
    print("\n" + table.format())
    homo = table.rows["homogeneous"]
    # Paper: BDF +35% remote tasks, EDF -10.7% (homogeneous cluster).
    assert homo["EDF"].mean < 0, "EDF should launch fewer off-node tasks than LF"
    assert homo["BDF"].mean > homo["EDF"].mean, "BDF should steal more than EDF"


def test_fig8b(benchmark, data):
    table = one_shot(benchmark, run_fig8b, data=data)
    print("\n" + table.format())
    for label, columns in table.rows.items():
        # Paper: ~80-85% degraded-read time reduction for both.
        assert columns["BDF"].mean > 0.5, f"BDF cut too small at {label}"
        assert columns["EDF"].mean > 0.5, f"EDF cut too small at {label}"
        assert columns["EDF"].mean >= columns["BDF"].mean - 0.10


def test_fig8c(benchmark, data):
    table = one_shot(benchmark, run_fig8c, data=data)
    print("\n" + table.format())
    for label, columns in table.rows.items():
        # Paper: 24-34% runtime savings.
        assert columns["BDF"].mean > 0.10, f"BDF saving too small at {label}"
        assert columns["EDF"].mean > 0.10, f"EDF saving too small at {label}"


def test_fig8d(benchmark, data):
    table = one_shot(benchmark, run_fig8d, data=data)
    print("\n" + table.format())
    extreme = table.rows["extreme"]
    # Paper: EDF 32.6% vs BDF 11.7% in the extreme case.
    assert extreme["EDF"].mean > 0.10
    assert extreme["EDF"].mean >= extreme["BDF"].mean - 0.05
