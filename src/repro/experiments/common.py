"""Shared plumbing for the simulation experiments.

The paper's methodology (Section V-B): for each parameter setting, generate
30 cluster configurations with different random seeds; in each, measure the
MapReduce runtime of every scheduler in failure mode and the runtime in
normal mode; report the *normalized runtime* (failure over normal) as a
boxplot over the 30 samples.

``run_many`` fans simulation trials out over a process pool, since each
trial is an independent single-threaded event-loop run.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.cluster.failures import FailurePattern
from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.metrics import BoxplotStats, SimulationResult
from repro.mapreduce.simulation import run_simulation

#: Seeds used when the caller does not override; the paper uses 30 samples.
DEFAULT_NUM_SEEDS = 30


def _env_int(name: str, default: int) -> int:
    """Read an integer environment override, failing with a usable message.

    A malformed value (``REPRO_SEEDS=lots``) raises a :class:`ValueError`
    naming the variable and the offending text instead of the bare
    ``int()`` traceback it used to.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def default_seeds() -> list[int]:
    """Seed list honouring the ``REPRO_SEEDS`` environment override.

    Set ``REPRO_SEEDS=5`` to run quick 5-sample experiments (useful in CI);
    unset, the paper's 30 samples are used.
    """
    count = _env_int("REPRO_SEEDS", DEFAULT_NUM_SEEDS)
    if count <= 0:
        raise ValueError(f"REPRO_SEEDS must be positive, got {count}")
    return list(range(count))


def max_workers() -> int:
    """Process-pool width, honouring the ``REPRO_WORKERS`` override.

    Defaults to every core: simulation trials are single-threaded and
    independent, and experiment batches are trivially parallel.  Like
    ``REPRO_SEEDS``, a zero or negative override raises a
    :class:`ValueError` naming the variable instead of being silently
    clamped to one worker.
    """
    if os.environ.get("REPRO_WORKERS") is not None:
        count = _env_int("REPRO_WORKERS", 1)
        if count <= 0:
            raise ValueError(f"REPRO_WORKERS must be positive, got {count}")
        return count
    return max(1, os.cpu_count() or 1)


def run_many(
    configs: list[SimulationConfig],
    runner=run_simulation,
    policy=None,
    journal_path: str | None = None,
    cache_dir: str | None = None,
) -> list[SimulationResult]:
    """Run many independent trials, in parallel when it pays off.

    ``runner`` must be a module-level callable (the process pool pickles
    it); campaigns pass a wrapper that converts typed refusals into data
    instead of letting one doomed trial abort the whole batch.  Serial and
    parallel execution produce identical result lists.

    Execution goes through the crash-safe
    :class:`~repro.experiments.campaign.CampaignEngine`: a worker killed
    by the OS costs a retry, never the batch.  By default trial exceptions
    propagate exactly as they always have; pass a
    :class:`~repro.experiments.campaign.CampaignPolicy` to change retry/
    timeout/failure-collection behaviour, ``journal_path`` to make the run
    resumable, and ``cache_dir`` to reuse verified results across runs
    (both require a JSON-payload runner such as :class:`DigestedRunner`).
    """
    from repro.experiments.campaign import CampaignEngine

    engine = CampaignEngine(
        runner=runner,
        policy=policy,
        journal_path=journal_path,
        cache=_open_cache(cache_dir),
    )
    return engine.run(configs).results


def _open_cache(cache_dir: str | None):
    if cache_dir is None:
        return None
    from repro import __version__
    from repro.experiments.cache import ResultCache

    return ResultCache(directory=cache_dir, code_version=__version__)


@dataclass(frozen=True)
class DigestedRunner:
    """A picklable runner wrapper that ships digests, not full results.

    Wraps any module-level trial runner so each pool worker folds its
    trial's latency samples into :func:`repro.obs.digest.digest_result`
    digests and returns only their serialised form -- O(1) memory per
    worker and O(bins) bytes over the pipe, independent of trial size.
    A ``None`` result from the wrapped runner stays ``None``.
    """

    runner: object = run_simulation

    def __call__(self, config: SimulationConfig) -> dict | None:
        from repro.obs.digest import digest_result

        result = self.runner(config)
        if result is None:
            return None
        return {
            name: digest.to_dict() for name, digest in digest_result(result).items()
        }


def run_many_digested(
    configs: list[SimulationConfig],
    runner=run_simulation,
    policy=None,
    journal_path: str | None = None,
    cache_dir: str | None = None,
) -> dict:
    """Run many trials, returning merged campaign telemetry digests.

    Fans out like :func:`run_many` but each worker returns only its
    trial's :class:`~repro.obs.digest.LatencyDigest` triple
    (``degraded_read`` / ``sojourn`` / ``makespan``); the digests are
    merged here **in trial order** -- the canonical order that makes
    serial and process-pool aggregation bit-identical.  Digest payloads
    are plain JSON, so these runs can always be journaled and cached.
    """
    from repro.obs.digest import LatencyDigest

    merged: dict[str, LatencyDigest] = {}
    for row in run_many(
        configs,
        runner=DigestedRunner(runner),
        policy=policy,
        journal_path=journal_path,
        cache_dir=cache_dir,
    ):
        if row is None:
            continue
        for name, payload in row.items():
            digest = LatencyDigest.from_dict(payload)
            if name in merged:
                merged[name].merge(digest)
            else:
                merged[name] = digest
    return merged


def run_failure_and_normal(
    base: SimulationConfig,
    schedulers: tuple[str, ...],
    seeds: list[int] | None = None,
) -> dict[str, list[SimulationResult]]:
    """Run every scheduler in failure mode plus a normal-mode reference.

    Returns results keyed by scheduler name, with the extra key
    ``"normal"`` holding the no-failure reference runs (one per seed).  In
    normal mode there are no degraded tasks, so all three schedulers behave
    identically and a single reference run per seed suffices.
    """
    seeds = default_seeds() if seeds is None else seeds
    grid: list[SimulationConfig] = []
    keys: list[tuple[str, int]] = []
    for seed in seeds:
        for scheduler in schedulers:
            grid.append(base.with_scheduler(scheduler).with_seed(seed))
            keys.append((scheduler, seed))
        grid.append(
            base.with_scheduler("LF").with_failure(FailurePattern.NONE).with_seed(seed)
        )
        keys.append(("normal", seed))
    results = run_many(grid)
    grouped: dict[str, list[SimulationResult]] = {name: [] for name in (*schedulers, "normal")}
    for (name, _seed), result in zip(keys, results):
        grouped[name].append(result)
    return grouped


class NormalizationError(ValueError):
    """A normal-mode reference runtime is unusable as a denominator.

    Raised instead of letting a zero, NaN, or failed-job reference emit
    ``inf``/``nan`` (or a bare ``ZeroDivisionError``) into boxplot stats,
    naming the offending seed so the broken reference run can be found.
    """


def normalized_runtimes(
    grouped: dict[str, list[SimulationResult]],
    job_id: int = 0,
    seeds: list[int] | None = None,
) -> dict[str, list[float]]:
    """Normalized runtime samples per scheduler (failure over normal).

    Every normal-mode reference runtime is validated before use; a zero,
    non-finite, or failed reference raises :class:`NormalizationError`
    naming the seed (``seeds[i]`` when the caller passes the seed list
    used to build the grid, the sample index otherwise).
    """
    normal = grouped["normal"]
    for position, reference in enumerate(normal):
        job = reference.job(job_id)
        runtime = job.runtime
        if job.failed or not math.isfinite(runtime) or runtime <= 0.0:
            which = (
                f"seed {seeds[position]}"
                if seeds is not None and position < len(seeds)
                else f"sample {position}"
            )
            raise NormalizationError(
                f"normal-mode reference runtime for job {job_id} at {which} "
                f"is unusable ({'failed job' if job.failed else runtime!r}); "
                "cannot normalize failure-mode runtimes against it"
            )
    normalized: dict[str, list[float]] = {}
    for name, results in grouped.items():
        if name == "normal":
            continue
        normalized[name] = [
            result.job(job_id).runtime / reference.job(job_id).runtime
            for result, reference in zip(results, normal)
        ]
    return normalized


@dataclass
class ExperimentTable:
    """A printable experiment outcome: labelled rows of named statistics.

    ``rows`` maps a row label (an x-axis point) to ``{column: stats}``.
    """

    title: str
    rows: dict[str, dict[str, BoxplotStats]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_row(self, label: str, columns: dict[str, list[float]]) -> None:
        """Summarise raw samples into a row of boxplot statistics."""
        self.rows[label] = {
            name: BoxplotStats.from_samples(samples) for name, samples in columns.items()
        }

    def format(self) -> str:
        """Render the table the way the paper's figures read."""
        lines = [self.title, "=" * len(self.title)]
        for label, columns in self.rows.items():
            parts = []
            for name, stats in columns.items():
                parts.append(
                    f"{name}: median={stats.median:.3f} "
                    f"[q1={stats.lower_quartile:.3f}, q3={stats.upper_quartile:.3f}] "
                    f"mean={stats.mean:.3f}"
                )
            lines.append(f"{label:>24}  " + "  |  ".join(parts))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def reduction(self, label: str, baseline: str, candidate: str) -> float:
        """Mean fractional reduction of ``candidate`` vs ``baseline`` in a row."""
        row = self.rows[label]
        base = row[baseline].mean
        return (base - row[candidate].mean) / base
