"""Unit tests for configuration (de)serialisation."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.ec.codec import CodeParams
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.serialization import (
    config_from_dict,
    config_from_json,
    config_to_json,
    load_config,
)
from repro.storage.degraded import SourceSelection


class TestRoundTrip:
    def test_default_config(self):
        original = SimulationConfig()
        rebuilt = config_from_json(config_to_json(original))
        assert rebuilt == original

    def test_custom_config(self):
        original = SimulationConfig(
            num_nodes=8,
            num_racks=2,
            map_slots=2,
            code=CodeParams(4, 2),
            speed_factors=tuple([1.0] * 4 + [0.5] * 4),
            jobs=(
                JobConfig(num_blocks=64, num_reduce_tasks=4),
                JobConfig(num_blocks=32, submit_time=10.0),
            ),
            failure=FailurePattern.DOUBLE_NODE,
            failure_eligible=(1, 2, 3),
            failure_time=42.0,
            source_selection=SourceSelection.RACK_LOCAL_FIRST,
            scheduler="BDF",
            seed=9,
        )
        rebuilt = config_from_json(config_to_json(original))
        assert rebuilt == original

    def test_sparse_dict_uses_defaults(self):
        config = config_from_dict({"scheduler": "LF", "seed": 3})
        assert config.scheduler == "LF"
        assert config.num_nodes == 40
        assert config.code == CodeParams(20, 15)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"shceduler": "LF"})

    def test_code_as_list(self):
        config = config_from_dict({"code": [8, 6]})
        assert config.code == CodeParams(8, 6)

    def test_enum_values_as_strings(self):
        config = config_from_dict(
            {"failure": "rack", "source_selection": "rack-local-first"}
        )
        assert config.failure is FailurePattern.RACK
        assert config.source_selection is SourceSelection.RACK_LOCAL_FIRST


class TestFileLoading:
    def test_load_config(self, tmp_path):
        path = tmp_path / "experiment.json"
        path.write_text(config_to_json(SimulationConfig(seed=77)))
        assert load_config(str(path)).seed == 77


class TestCliIntegration:
    def test_simulate_with_config_file(self, tmp_path, capsys):
        from repro.cli import main

        config = SimulationConfig(
            num_nodes=6,
            num_racks=2,
            map_slots=2,
            code=CodeParams(4, 2),
            block_size=16 * 1024 * 1024,
            jobs=(JobConfig(num_blocks=24, num_reduce_tasks=0),),
            scheduler="LF",
            seed=4,
        )
        path = tmp_path / "experiment.json"
        path.write_text(config_to_json(config))
        assert main(["simulate", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scheduler: LF" in out
