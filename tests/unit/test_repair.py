"""Unit tests for the full-node repair planner."""

from __future__ import annotations

import pytest

from repro.cluster.network import NetworkSpec
from repro.cluster.topology import ClusterTopology
from repro.ec.codec import CodeParams
from repro.storage.hdfs import HdfsRaidCluster
from repro.storage.repair import RepairPlanner


@pytest.fixture
def setup(rng):
    topology = ClusterTopology.from_rack_sizes([3, 3, 3])
    cluster = HdfsRaidCluster(
        topology, CodeParams(6, 4), num_native_blocks=36,
        placement="declustered", rng=rng,
    )
    planner = RepairPlanner(cluster.block_map, topology)
    return topology, cluster, planner


class TestPlan:
    def test_repairs_every_lost_block(self, setup, rng):
        topology, cluster, planner = setup
        failed = frozenset({0})
        plan = planner.plan(failed, rng)
        lost = [
            stored.block
            for stored in cluster.block_map.all_blocks()
            if stored.node_id == 0
        ]
        assert plan.lost_block_count == len(lost)
        assert {repair.block for repair in plan.repairs} == set(lost)

    def test_sources_are_k_live_stripe_members(self, setup, rng):
        topology, cluster, planner = setup
        failed = frozenset({0})
        plan = planner.plan(failed, rng)
        for repair in plan.repairs:
            assert len(repair.sources) == 4
            for source in repair.sources:
                assert source.node_id not in failed
                assert source.block.stripe_id == repair.block.stripe_id

    def test_destination_keeps_distinct_node_invariant(self, setup, rng):
        topology, cluster, planner = setup
        plan = planner.plan(frozenset({0}), rng)
        for repair in plan.repairs:
            stripe_nodes = {
                stored.node_id
                for stored in cluster.block_map.surviving_stripe_blocks(
                    repair.block.stripe_id, {0}
                )
            }
            assert repair.destination not in stripe_nodes
            assert repair.destination != 0

    def test_destinations_balanced(self, setup, rng):
        topology, cluster, planner = setup
        plan = planner.plan(frozenset({0}), rng)
        counts: dict[int, int] = {}
        for repair in plan.repairs:
            counts[repair.destination] = counts.get(repair.destination, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_unrecoverable_failure_rejected(self, setup, rng):
        topology, cluster, planner = setup
        stripe_nodes = [s.node_id for s in cluster.block_map.stripe_blocks(0)]
        with pytest.raises(RuntimeError):
            planner.plan(frozenset(stripe_nodes[:3]), rng)


class TestExclusion:
    """Regression: blacklisted nodes are never a source or destination."""

    def test_excluded_node_never_source_or_destination(self, setup, rng):
        topology, cluster, planner = setup
        excluded = frozenset({4})
        plan = planner.plan(frozenset({0}), rng, excluded=excluded)
        for repair in plan.repairs:
            assert repair.destination != 4
            assert all(source.node_id != 4 for source in repair.sources)

    def test_no_exclusion_matches_default_draw(self, setup):
        from repro.sim.rng import RngStreams

        topology, cluster, planner = setup
        default = planner.plan(frozenset({0}), RngStreams(5))
        explicit = planner.plan(frozenset({0}), RngStreams(5), excluded=frozenset())
        assert default.repairs == explicit.repairs

    def test_corrupt_block_rebuilt_in_place(self, setup, rng):
        topology, cluster, planner = setup
        stored = cluster.block_map.stripe_blocks(0)[0]
        cluster.block_map.mark_corrupt(stored.block)
        repair = planner.plan_block(stored.block, frozenset(), rng)
        assert repair.destination == stored.node_id
        assert all(source.block != stored.block for source in repair.sources)

    def test_corrupt_survivor_not_a_repair_source(self, setup, rng):
        topology, cluster, planner = setup
        blocks = cluster.block_map.stripe_blocks(0)
        # Block 0 is lost with its node; block 1 is corrupt on a live node.
        lost, bad = blocks[0], blocks[1]
        cluster.block_map.mark_corrupt(bad.block)
        repair = planner.plan_block(lost.block, frozenset({lost.node_id}), rng)
        assert all(source.block != bad.block for source in repair.sources)


class TestTrafficAccounting:
    def test_bytes_per_destination(self, setup, rng):
        topology, cluster, planner = setup
        plan = planner.plan(frozenset({0}), rng)
        block_size = 1000.0
        totals = plan.bytes_per_destination(block_size)
        # Every repair fetches k blocks (destination never holds a source).
        assert sum(totals.values()) == pytest.approx(
            plan.lost_block_count * 4 * block_size
        )

    def test_cross_rack_bytes_bounded(self, setup, rng):
        topology, cluster, planner = setup
        plan = planner.plan(frozenset({0}), rng)
        block_size = 1000.0
        cross = plan.cross_rack_bytes(topology, block_size)
        total = plan.lost_block_count * 4 * block_size
        assert 0.0 <= cross <= total

    def test_estimated_duration_positive(self, setup, rng):
        topology, cluster, planner = setup
        plan = planner.plan(frozenset({0}), rng)
        network = NetworkSpec(rack_download_bw=1e6)
        parallel = plan.estimated_duration(topology, network, 1000.0)
        serial = plan.estimated_duration(
            topology, network, 1000.0, parallel_destinations=False
        )
        assert 0.0 < parallel <= serial

    def test_empty_plan_zero_duration(self, setup, rng):
        topology, cluster, planner = setup
        plan = planner.plan(frozenset(), rng)
        network = NetworkSpec(rack_download_bw=1e6)
        assert plan.estimated_duration(topology, network, 1000.0) == 0.0
