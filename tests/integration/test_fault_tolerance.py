"""Fault-tolerance acceptance tests: scripted churn, retries, speculation.

These exercise the full stack -- scripted :class:`FailureSchedule` replay,
heartbeat-expiry detection, retry budgets with :class:`JobFailedError`,
blacklisting, node recovery and speculative execution -- under real
simulation runs.
"""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.network import MB
from repro.ec.codec import CodeParams
from repro.faults import (
    FailEvent,
    FailureSchedule,
    JobFailedError,
    RecoverEvent,
    SlowdownEvent,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import TaskKind
from repro.mapreduce.simulation import run_simulation


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_nodes=8,
        num_racks=2,
        map_slots=2,
        code=CodeParams(4, 2),
        block_size=32 * MB,
        jobs=(JobConfig(num_blocks=64, num_reduce_tasks=4),),
        scheduler="EDF",
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


#: The acceptance trace: a crash the master must detect, a slowdown, a
#: recovery that makes the dead node's blocks readable again.
ACCEPTANCE_SCHEDULE = FailureSchedule(
    (
        FailEvent(at=30.0, node=2),
        SlowdownEvent(at=40.0, node=5, factor=3.0, duration=60.0),
        RecoverEvent(at=120.0, node=2),
    )
)


class TestScriptedTrace:
    @pytest.mark.parametrize("scheduler", ["LF", "BDF", "EDF"])
    def test_trace_runs_under_every_scheduler(self, scheduler):
        cfg = config(
            scheduler=scheduler,
            failure_schedule=ACCEPTANCE_SCHEDULE,
            heartbeat_expiry=15.0,
            speculative=True,
        )
        result = run_simulation(cfg)
        job = result.job(0)
        maps = [t for t in job.tasks if t.kind is TaskKind.MAP]
        reduces = [t for t in job.tasks if t.kind is TaskKind.REDUCE]
        assert len(maps) == 64
        assert len(reduces) == 4
        # Detection: declared dead only after heartbeat expiry, not instantly.
        (detection,) = result.faults.detections
        assert detection.node == 2
        assert detection.failed_at == pytest.approx(30.0)
        assert cfg.heartbeat_expiry <= detection.latency
        assert detection.latency <= cfg.heartbeat_expiry + 2 * cfg.heartbeat_interval
        # The crash killed whatever the node was running; attempts were retried.
        assert job.killed_attempts >= 1
        assert job.max_task_attempt >= 2
        # Recovery was observed.
        (recovery,) = result.faults.recoveries
        assert recovery.node == 2
        assert recovery.at == pytest.approx(120.0)
        # The slowdown was recorded.
        (slowdown,) = result.faults.slowdowns
        assert slowdown.node == 5 and slowdown.factor == pytest.approx(3.0)
        # The recovered node ends the trial alive.
        assert result.failed_nodes == frozenset()

    @pytest.mark.parametrize("scheduler", ["LF", "BDF", "EDF"])
    def test_trace_is_deterministic(self, scheduler):
        cfg = config(
            scheduler=scheduler,
            failure_schedule=ACCEPTANCE_SCHEDULE,
            heartbeat_expiry=15.0,
            speculative=True,
        )
        first = run_simulation(cfg)
        second = run_simulation(cfg)
        assert first.job(0).runtime == pytest.approx(second.job(0).runtime)
        assert first.faults == second.faults
        assert first.job(0).killed_attempts == second.job(0).killed_attempts
        assert first.job(0).speculative_killed == second.job(0).speculative_killed

    def test_t0_schedule_equals_static_failure(self):
        """A t=0 fail event is the paper's down-before-start setting."""
        static = run_simulation(config())
        (victim,) = static.failed_nodes
        scripted = run_simulation(
            config(
                failure=FailurePattern.NONE,
                failure_schedule=FailureSchedule((FailEvent(at=0.0, node=victim),)),
            )
        )
        assert scripted.failed_nodes == static.failed_nodes
        assert scripted.job(0).runtime == pytest.approx(static.job(0).runtime)
        assert scripted.faults.detections == []  # known at start, nothing detected


class TestRetryBudget:
    def test_exhaustion_raises_job_failed_error(self):
        """max_attempts=1 plus a mid-run strike fails cleanly, never hangs."""
        cfg = config(failure_time=50.0, max_attempts=1)
        with pytest.raises(JobFailedError) as excinfo:
            run_simulation(cfg)
        result = excinfo.value.result
        assert result is not None
        metrics = result.job(0)
        assert metrics.failed
        assert "max_attempts=1" in metrics.failure_reason
        assert metrics.killed_attempts >= 1

    def test_default_budget_survives_the_same_strike(self):
        result = run_simulation(config(failure_time=50.0))
        assert not result.job(0).failed


class TestBlacklisting:
    def test_flappy_node_gets_blacklisted(self):
        schedule = FailureSchedule(
            (
                FailEvent(at=20.0, node=1),
                RecoverEvent(at=35.0, node=1),
                FailEvent(at=50.0, node=1),
                RecoverEvent(at=65.0, node=1),
                FailEvent(at=80.0, node=1),
                RecoverEvent(at=95.0, node=1),
            )
        )
        result = run_simulation(
            config(
                jobs=(JobConfig(num_blocks=96, num_reduce_tasks=4),),
                failure_schedule=schedule,
                heartbeat_expiry=5.0,
                blacklist_threshold=3,
            )
        )
        assert result.faults.blacklisted_nodes == {1}
        assert len(result.faults.detections) == 3
        # The job still completes: the blacklisted node's work moved elsewhere.
        job = result.job(0)
        assert sum(1 for t in job.tasks if t.kind is TaskKind.MAP) == 96
        # After the final recovery nothing ran on the blacklisted node.
        blacklisted_at = result.faults.blacklistings[0].at
        for task in job.tasks:
            if task.slave_id == 1:
                assert task.launch_time < blacklisted_at


class TestRecovery:
    def test_recovery_reclaims_degraded_work(self):
        jobs = (JobConfig(num_blocks=96, num_reduce_tasks=4),)
        crash_only = FailureSchedule((FailEvent(at=30.0, node=2),))
        with_recovery = FailureSchedule(
            (FailEvent(at=30.0, node=2), RecoverEvent(at=60.0, node=2))
        )
        base = dict(jobs=jobs, heartbeat_expiry=10.0)
        crashed = run_simulation(config(failure_schedule=crash_only, **base))
        recovered = run_simulation(config(failure_schedule=with_recovery, **base))
        (record,) = recovered.faults.recoveries
        assert record.reclaimed_tasks > 0
        assert (
            recovered.job(0).degraded_task_count < crashed.job(0).degraded_task_count
        )
        # The recovered node picks work back up after rejoining.
        late_tasks = [
            t for t in recovered.job(0).tasks
            if t.slave_id == 2 and t.launch_time >= 60.0
        ]
        assert late_tasks

    def test_recovery_before_detection_requeues_silently(self):
        """Crash and rejoin inside the expiry window: no detection, no loss."""
        schedule = FailureSchedule(
            (FailEvent(at=30.0, node=2), RecoverEvent(at=40.0, node=2))
        )
        result = run_simulation(
            config(failure_schedule=schedule, heartbeat_expiry=60.0)
        )
        assert result.faults.detections == []
        job = result.job(0)
        assert sum(1 for t in job.tasks if t.kind is TaskKind.MAP) == 64
        # The crash still killed and requeued the node's running attempts.
        assert job.killed_attempts >= 1


class TestSpeculativeExecution:
    def config_with_straggler(self, **overrides) -> SimulationConfig:
        schedule = FailureSchedule(
            (SlowdownEvent(at=5.0, node=3, factor=6.0, duration=400.0),)
        )
        settings = dict(
            failure=FailurePattern.NONE,
            failure_schedule=schedule,
            speculative=True,
        )
        settings.update(overrides)
        return config(**settings)

    @pytest.mark.parametrize("scheduler", ["LF", "BDF", "EDF"])
    def test_backups_rescue_stragglers(self, scheduler):
        result = run_simulation(self.config_with_straggler(scheduler=scheduler))
        job = result.job(0)
        assert job.speculative_launched > 0
        # Each map completes exactly once: losers are killed, not recorded.
        maps = [t for t in job.tasks if t.kind is TaskKind.MAP]
        assert len(maps) == 64
        assert job.speculative_killed <= job.speculative_launched

    def test_speculation_beats_waiting(self):
        slow = run_simulation(
            self.config_with_straggler(speculative=False)
        ).job(0).runtime
        rescued = run_simulation(self.config_with_straggler()).job(0).runtime
        assert rescued < slow

    def test_speculation_is_deterministic(self):
        cfg = self.config_with_straggler()
        first = run_simulation(cfg)
        second = run_simulation(cfg)
        assert first.job(0).runtime == pytest.approx(second.job(0).runtime)
        assert first.job(0).speculative_launched == second.job(0).speculative_launched
        assert first.job(0).speculative_killed == second.job(0).speculative_killed
