"""Integration tests for long-horizon reliability campaigns.

The contract under test: a fixed-seed campaign completes under the
invariant sanitizer with zero violations, reports the full MTTDL /
latency-percentile / stability schema, and is bit-identical across runs
and across serial-vs-parallel execution of its window trials.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.network import mbps
from repro.experiments.reliability import (
    REPORT_SCHEMA,
    CampaignConfig,
    render_report,
    report_to_json,
    run_campaign,
)
from repro.faults.models import DAY, HOUR, YEAR, ExponentialLifetimes
from repro.mapreduce.config import JobConfig
from repro.mapreduce.workload import PoissonArrivals
from repro.storage.repair_driver import RepairConfig

#: Small but real: enough churn (and slow enough repair) for degraded reads
#: in every window, two windows x three policies (6 trials > the serial
#: threshold of run_many, so the default path exercises the process pool).
CONFIG = CampaignConfig(
    model=ExponentialLifetimes(mttf=5.0 * DAY, mttr=2.0 * HOUR),
    arrivals=PoissonArrivals(
        mean_interarrival=120.0,
        templates=(JobConfig(num_blocks=90, num_reduce_tasks=6),),
    ),
    horizon=0.02 * YEAR,
    iterations=1,
    num_windows=2,
    window_duration=1200.0,
    repair=RepairConfig(bandwidth_cap=mbps(100.0)),
    seed=7,
)


@pytest.fixture(scope="module")
def report():
    return run_campaign(CONFIG, check=True)


class TestSchema:
    def test_schema_tag_and_sections(self, report):
        assert report["schema"] == REPORT_SCHEMA
        assert report["checked"] is True
        assert set(report) == {
            "schema",
            "config",
            "checked",
            "availability",
            "windows",
            "policies",
        }

    def test_mttdl_estimate_present(self, report):
        availability = report["availability"]
        if availability["censored"]:
            assert availability["mttdl"] is None
            assert availability["mttdl_lower_bound"] == availability["total_time"]
        else:
            assert availability["mttdl"] > 0
        assert 0.0 <= availability["durability"] <= 1.0

    def test_backlog_dynamics_reported(self, report):
        backlog = report["availability"]["backlog"]
        assert set(backlog) == {"peak", "mean", "bounded", "drained"}
        assert backlog["peak"] >= 0
        assert backlog["bounded"] is True

    def test_every_policy_reports_percentiles_and_stability(self, report):
        assert set(report["policies"]) == {"LF", "BDF", "EDF"}
        for row in report["policies"].values():
            latency = row["degraded_read_seconds"]
            assert set(latency) == {"count", "p50", "p95", "p99"}
            assert latency["count"] > 0, "windows anchor at failures; expect degraded reads"
            assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
            assert row["stability"] in ("stable", "saturated", "no-data")
            assert row["jobs"]["submitted"] > 0

    def test_windows_anchor_inside_horizon(self, report):
        assert len(report["windows"]) == CONFIG.num_windows
        for window in report["windows"]:
            assert 0.0 <= window["start"] <= CONFIG.horizon
            assert window["jobs"] > 0

    def test_report_renders(self, report):
        text = render_report(report)
        assert "MTTDL" in text
        assert "sanitizer" in text


class TestDeterminism:
    def test_rerun_is_bit_identical(self, report):
        again = run_campaign(CONFIG, check=True)
        assert report_to_json(again) == report_to_json(report)

    def test_serial_matches_parallel(self, report):
        previous = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = "1"
        try:
            serial = run_campaign(CONFIG, check=True)
        finally:
            if previous is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = previous
        assert report_to_json(serial) == report_to_json(report)

    def test_different_seed_differs(self, report):
        other = run_campaign(
            CampaignConfig(
                model=CONFIG.model,
                arrivals=CONFIG.arrivals,
                horizon=CONFIG.horizon,
                iterations=CONFIG.iterations,
                num_windows=CONFIG.num_windows,
                window_duration=CONFIG.window_duration,
                repair=CONFIG.repair,
                seed=8,
            )
        )
        assert report_to_json(other) != report_to_json(report)

    def test_report_is_json_serialisable(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["schema"] == REPORT_SCHEMA
