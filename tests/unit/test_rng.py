"""Unit tests for named random streams."""

from __future__ import annotations

import pytest

from repro.sim.rng import RngStreams


class TestStreams:
    def test_same_name_same_stream(self):
        rng = RngStreams(1)
        assert rng.stream("a") is rng.stream("a")

    def test_streams_independent_of_creation_order(self):
        first = RngStreams(1)
        _ = first.stream("a").random()
        value_b_first = first.stream("b").random()

        second = RngStreams(1)
        value_b_second = second.stream("b").random()
        assert value_b_first == value_b_second

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_different_names_differ(self):
        rng = RngStreams(1)
        assert rng.stream("x").random() != rng.stream("y").random()


class TestSpawn:
    def test_spawn_is_prefix_namespacing(self):
        rng = RngStreams(1)
        assert rng.spawn("a").stream("b") is rng.stream("a:b")

    def test_spawn_same_name_same_child(self):
        rng = RngStreams(1)
        assert rng.spawn("a") is rng.spawn("a")

    def test_spawn_nests(self):
        rng = RngStreams(1)
        assert rng.spawn("a").spawn("b").stream("c") is rng.stream("a:b:c")

    def test_spawned_streams_independent_of_access_path(self):
        direct = RngStreams(7)
        value_direct = direct.stream("model:exp:node:3").random()
        spawned = RngStreams(7)
        value_spawned = (
            spawned.spawn("model:exp").stream("node:3").random()
        )
        assert value_direct == value_spawned

    def test_sibling_children_differ(self):
        rng = RngStreams(1)
        assert rng.spawn("a").stream("x").random() != rng.spawn("b").stream("x").random()


class TestDraws:
    def test_normal_floor(self):
        rng = RngStreams(1)
        for _ in range(200):
            assert rng.normal("t", mean=0.0, std=5.0, minimum=0.5) >= 0.5

    def test_exponential_positive(self):
        rng = RngStreams(1)
        for _ in range(50):
            assert rng.exponential("e", 10.0) > 0

    def test_exponential_bad_mean(self):
        with pytest.raises(ValueError):
            RngStreams(1).exponential("e", 0.0)

    def test_exponential_mean_roughly_right(self):
        rng = RngStreams(3)
        samples = [rng.exponential("e", 120.0) for _ in range(4000)]
        assert 100 < sum(samples) / len(samples) < 140

    def test_choice_and_sample(self):
        rng = RngStreams(1)
        items = list(range(10))
        assert rng.choice("c", items) in items
        picked = rng.sample("s", items, 3)
        assert len(picked) == 3
        assert len(set(picked)) == 3

    def test_shuffle_in_place(self):
        rng = RngStreams(1)
        items = list(range(20))
        rng.shuffle("sh", items)
        assert sorted(items) == list(range(20))

    def test_randint_bounds(self):
        rng = RngStreams(1)
        for _ in range(100):
            assert 3 <= rng.randint("r", 3, 7) <= 7
