"""Long-horizon reliability campaigns: MTTDL, latency tails, stability.

The paper evaluates schedulers over single scripted failures; a reliability
campaign asks the operational questions instead: *over years of simulated
churn, how often is data lost, how long do degraded reads take, and does any
scheduling policy fall over under sustained open-loop traffic?*  A campaign
pairs a stochastic failure model (:mod:`repro.faults.models`) with an
open-loop arrival process (:mod:`repro.mapreduce.workload`) and runs two
complementary phases:

**Phase A -- storage-level availability.**  The full horizon (years) is far
too long to simulate at MapReduce granularity, so availability is replayed
at block granularity: the generated schedule drives an event loop over the
real block placement, with failure detection after ``heartbeat_expiry``, a
repair server whose aggregate throughput is ``bandwidth_cap / (k * block
size)`` blocks per second (a bandwidth cap shares, so concurrency does not
change aggregate throughput), and stale-repair cancellation on node
recovery.  This yields the MTTDL estimate (censored lower bound when no
loss occurred), the durability fraction, and the repair-backlog dynamics.

**Phase B -- scheduler-level windows.**  Short windows are cut out of the
same generated schedule with :func:`repro.faults.models.slice_window`,
anchored at failure activity, and each window is run as a *full* MapReduce
trial per scheduling policy (LF/BDF/EDF) with open-loop job arrivals.
These trials produce the degraded-read latency percentiles (p50/p95/p99)
and the saturation verdict: under open-loop traffic an overloaded policy
shows job sojourn times growing with submit time, so the campaign fits a
sojourn-vs-submit slope per window and calls the policy ``saturated`` when
the average slope exceeds :data:`SATURATION_SLOPE`.

Phase A intentionally keeps each block's home fixed (a block rebuilt while
its node is down is counted available, and re-exposed if that node fails
again); this first-order approximation keeps the year-scale loop cheap
while Phase B retains full re-homing fidelity inside its windows.

Everything is deterministic for a campaign seed: model and arrival draws
come from named RNG substreams, window trials fan out over
:func:`repro.experiments.common.run_many` (serial and parallel runs are
bit-identical), and the report is a canonically ordered JSON document
(schema tag ``repro.reliability-campaign/v1``).  Window workers stream
their latency samples into mergeable :class:`repro.obs.digest.LatencyDigest`
histograms -- O(1) memory per worker, merged here in canonical window
order -- so campaign telemetry scales to arbitrarily long windows, and
each policy row carries its merged digests in a ``telemetry`` block.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import math
import os
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.failures import FailurePattern
from repro.cluster.network import mbps
from repro.cluster.topology import ClusterTopology
from repro.faults.errors import JobFailedError
from repro.faults.models import (
    DAY,
    HOUR,
    YEAR,
    ExponentialLifetimes,
    FailureModel,
    model_from_dict,
    slice_window,
)
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.metrics import SimulationResult
from repro.mapreduce.simulation import build_topology, run_simulation
from repro.obs.digest import LatencyDigest, digest_result
from repro.mapreduce.workload import ArrivalProcess, PoissonArrivals, arrivals_from_dict
from repro.sim.rng import RngStreams
from repro.storage.block import BlockId
from repro.storage.placement import RackConstrainedRandomPlacement
from repro.storage.repair_driver import RepairConfig

#: Schema tag stamped on every campaign report.
REPORT_SCHEMA = "repro.reliability-campaign/v1"

#: Average sojourn-vs-submit slope above which a policy is called saturated:
#: each arriving job waiting half a second longer per second of campaign time
#: means the queue grows without bound under open-loop traffic.
SATURATION_SLOPE = 0.5

_POLICIES = ("LF", "BDF", "EDF")


@dataclass(frozen=True)
class CampaignConfig:
    """One reliability campaign: model + traffic + cluster + horizons.

    ``base`` supplies the cluster shape (nodes, racks, code, block size,
    bandwidth); its ``jobs`` / ``failure`` / ``scheduler`` / ``seed`` fields
    are ignored -- windows get open-loop arrivals, a schedule slice, and a
    derived seed instead.  The stored-file shape is derived from the largest
    arrival template (``ceil(num_blocks / k)`` stripes of ``n`` blocks),
    matching what each window trial stores.
    """

    model: FailureModel = field(default_factory=ExponentialLifetimes)
    arrivals: ArrivalProcess = field(
        default_factory=lambda: PoissonArrivals(
            mean_interarrival=300.0,
            templates=(JobConfig(num_blocks=60, num_reduce_tasks=8),),
        )
    )
    horizon: float = 1.0 * YEAR
    iterations: int = 3
    num_windows: int = 3
    window_duration: float = 1800.0
    policies: tuple[str, ...] = _POLICIES
    base: SimulationConfig = field(default_factory=SimulationConfig)
    repair: RepairConfig = field(
        default_factory=lambda: RepairConfig(bandwidth_cap=mbps(400.0))
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if self.num_windows < 0:
            raise ValueError(f"num_windows must be >= 0, got {self.num_windows}")
        if self.window_duration <= 0:
            raise ValueError(
                f"window_duration must be positive, got {self.window_duration}"
            )
        if not self.policies:
            raise ValueError("need at least one scheduling policy")
        for policy in self.policies:
            if policy not in _POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r}; choose from {_POLICIES}"
                )

    @property
    def num_stripes(self) -> int:
        """Stripes backing the largest arrival template's input file."""
        templates = getattr(self.arrivals, "templates", None) or (JobConfig(),)
        blocks = max(template.num_blocks for template in templates)
        return -(-blocks // self.base.code.k)

    def to_dict(self) -> dict:
        """The campaign parameters, as they appear in the report."""
        return {
            "model": self.model.to_dict(),
            "arrivals": self.arrivals.to_dict(),
            "horizon": self.horizon,
            "iterations": self.iterations,
            "num_windows": self.num_windows,
            "window_duration": self.window_duration,
            "policies": list(self.policies),
            "seed": self.seed,
            "cluster": {
                "num_nodes": self.base.num_nodes,
                "num_racks": self.base.num_racks,
                "code": [self.base.code.n, self.base.code.k],
                "block_size": self.base.block_size,
                "num_stripes": self.num_stripes,
            },
            "repair": {
                "bandwidth_cap": self.repair.bandwidth_cap,
                "concurrent_repairs": self.repair.concurrent_repairs,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict, base: SimulationConfig | None = None) -> "CampaignConfig":
        """Rebuild campaign knobs from a :meth:`to_dict` payload."""
        cluster = payload.get("cluster", {})
        repair = payload.get("repair", {})
        return cls(
            model=model_from_dict(payload["model"]),
            arrivals=arrivals_from_dict(payload["arrivals"]),
            horizon=payload.get("horizon", 1.0 * YEAR),
            iterations=payload.get("iterations", 3),
            num_windows=payload.get("num_windows", 3),
            window_duration=payload.get("window_duration", 1800.0),
            policies=tuple(payload.get("policies", _POLICIES)),
            base=base if base is not None else SimulationConfig(),
            repair=RepairConfig(
                bandwidth_cap=repair.get("bandwidth_cap", mbps(400.0)),
                concurrent_repairs=repair.get("concurrent_repairs", 2),
            ),
            seed=payload.get("seed", 0),
        )


# -- Phase A: block-granularity availability replay ---------------------------


class _AvailabilityStats:
    """Accumulators one availability replay fills in."""

    def __init__(self) -> None:
        self.loss_events = 0
        self.lost_stripe_time = 0.0
        self.node_down_time = 0.0
        self.backlog_peak = 0
        self.backlog_mean = 0.0
        self.backlog_first_half_mean = 0.0
        self.backlog_second_half_mean = 0.0
        self.backlog_final = 0
        self.blocks_repaired = 0


def _replay_availability(
    schedule: FailureSchedule,
    topology: ClusterTopology,
    assignment: dict[BlockId, int],
    parity: int,
    service_time: float,
    detection_delay: float,
    horizon: float,
) -> _AvailabilityStats:
    """Replay one generated schedule at block granularity.

    A single repair server with deterministic ``service_time`` per block
    models the bandwidth-capped repair driver's aggregate throughput; the
    queue is FIFO with lazy cancellation (a block whose node recovered is
    skipped when it reaches the head, mirroring the driver's stale-repair
    drop).
    """
    node_blocks: dict[int, list[BlockId]] = {}
    by_coord: dict[tuple[int, int], BlockId] = {}
    for block, node in assignment.items():
        node_blocks.setdefault(node, []).append(block)
        by_coord[(block.stripe_id, block.position)] = block
    for blocks in node_blocks.values():
        blocks.sort(key=lambda b: (b.stripe_id, b.position))

    stats = _AvailabilityStats()
    down: set[int] = set()
    fail_epoch: dict[int, int] = {}
    unavailable: set[BlockId] = set()
    stripe_missing: dict[int, int] = {}
    loss_since: dict[int, float] = {}
    pending: set[BlockId] = set()
    queue: deque[BlockId] = deque()
    in_flight: BlockId | None = None

    # Time-weighted backlog integration, split at the horizon midpoint so
    # the boundedness verdict can compare the two halves.
    half = horizon / 2.0
    last_depth_at = 0.0
    integral = [0.0, 0.0]

    def _note_depth(now: float) -> None:
        nonlocal last_depth_at
        depth = len(pending)
        start = last_depth_at
        while start < now:
            edge = half if start < half else horizon
            end = min(now, edge)
            integral[0 if start < half else 1] += depth * (end - start)
            start = end
        last_depth_at = now

    def _depth_changed(now: float) -> None:
        stats.backlog_peak = max(stats.backlog_peak, len(pending))

    def _mark_unavailable(now: float, block: BlockId) -> None:
        if block in unavailable:
            return
        unavailable.add(block)
        missing = stripe_missing.get(block.stripe_id, 0) + 1
        stripe_missing[block.stripe_id] = missing
        if missing == parity + 1:
            stats.loss_events += 1
            loss_since[block.stripe_id] = now

    def _mark_available(now: float, block: BlockId) -> None:
        if block not in unavailable:
            return
        unavailable.discard(block)
        missing = stripe_missing[block.stripe_id] - 1
        stripe_missing[block.stripe_id] = missing
        if missing == parity and block.stripe_id in loss_since:
            stats.lost_stripe_time += now - loss_since.pop(block.stripe_id)

    # Event heap: (time, sequence, kind, payload).  Kinds: 0 = schedule
    # event, 1 = failure detected, 2 = repair completed.
    heap: list[tuple[float, int, int, object]] = []
    sequence = 0
    for event in schedule.events:
        heapq.heappush(heap, (event.at, sequence, 0, event))
        sequence += 1

    def _start_next(now: float) -> None:
        nonlocal in_flight, sequence
        while in_flight is None and queue:
            block = queue.popleft()
            if block not in pending:
                continue  # cancelled by a recovery
            in_flight = block
            heapq.heappush(heap, (now + service_time, sequence, 2, block))
            sequence += 1

    down_since: dict[int, float] = {}
    while heap:
        now, _seq, kind, payload = heapq.heappop(heap)
        if now >= horizon:
            break
        _note_depth(now)
        if kind == 0:
            event = payload
            if isinstance(event, FailEvent):
                for node in schedule.fail_targets(event, topology):
                    if node in down:
                        continue
                    down.add(node)
                    down_since[node] = now
                    fail_epoch[node] = fail_epoch.get(node, 0) + 1
                    heapq.heappush(
                        heap,
                        (now + detection_delay, sequence, 1, (node, fail_epoch[node])),
                    )
                    sequence += 1
                    for block in node_blocks.get(node, ()):
                        _mark_unavailable(now, block)
            elif isinstance(event, RecoverEvent):
                node = event.node
                if node not in down:
                    continue
                down.discard(node)
                stats.node_down_time += now - down_since.pop(node)
                for block in node_blocks.get(node, ()):
                    if block is not in_flight and block in pending:
                        pending.discard(block)
                    _mark_available(now, block)
                _depth_changed(now)
            elif isinstance(event, CorruptEvent):
                block = by_coord.get((event.stripe, event.position))
                if block is None or block in pending:
                    continue
                _mark_unavailable(now, block)
                pending.add(block)
                queue.append(block)
                _depth_changed(now)
                _start_next(now)
            # SlowdownEvents do not affect availability.
        elif kind == 1:
            node, epoch = payload
            if node not in down or fail_epoch.get(node) != epoch:
                continue  # recovered (or re-failed) before detection
            for block in node_blocks.get(node, ()):
                if block in unavailable and block not in pending:
                    pending.add(block)
                    queue.append(block)
            _depth_changed(now)
            _start_next(now)
        else:
            block = payload
            in_flight = None
            if block in pending:
                pending.discard(block)
                stats.blocks_repaired += 1
                _mark_available(now, block)
            _start_next(now)

    _note_depth(horizon)
    for since in loss_since.values():
        stats.lost_stripe_time += horizon - since
    for since in down_since.values():
        stats.node_down_time += horizon - since
    stats.backlog_first_half_mean = integral[0] / half
    stats.backlog_second_half_mean = integral[1] / (horizon - half)
    stats.backlog_mean = (integral[0] + integral[1]) / horizon
    stats.backlog_final = len(pending)
    return stats


# -- Phase B: windowed full-fidelity trials -----------------------------------


def _window_runner(config: SimulationConfig) -> SimulationResult | None:
    """Run one window trial, converting typed refusals into data.

    Module-level so :func:`repro.experiments.common.run_many` can pickle it.
    A window where churn makes data unavailable (or exhausts retry budgets)
    is a legitimate campaign observation, not a crash: the partial result is
    returned (``None`` when the trial refused at build time because a stripe
    was already unrecoverable).  Invariant violations still propagate.
    """
    try:
        return run_simulation(config)
    except JobFailedError as error:  # includes DataUnavailableError
        return error.result


def _window_telemetry(config: SimulationConfig) -> dict | None:
    """Run one window trial and fold it into O(1)-memory telemetry.

    Each pool worker keeps only the mergeable latency digests
    (:func:`repro.obs.digest.digest_result`), job counters, and the
    window's sojourn-vs-submit slope -- never the full task trace -- so a
    campaign's memory and inter-process traffic stay constant per window
    regardless of how many jobs and tasks a window runs.  ``None`` means
    the trial refused at build time (an unrecoverable stripe), a data-loss
    observation.
    """
    result = _window_runner(config)
    if result is None:
        return None
    submitted = completed = failed = 0
    points: list[tuple[float, float]] = []
    for job in result.jobs.values():
        submitted += 1
        if job.failed or math.isnan(job.finish_time):
            failed += 1
            continue
        completed += 1
        points.append((job.submit_time, job.makespan))
    return {
        "data_loss": any(
            job.failure_kind == "data-unavailable" for job in result.jobs.values()
        ),
        "jobs": {"submitted": submitted, "completed": completed, "failed": failed},
        "slope": _fit_slope(points),
        "digests": {
            name: digest.to_dict() for name, digest in digest_result(result).items()
        },
    }


def _window_starts(
    schedule: FailureSchedule,
    topology: ClusterTopology,
    config: CampaignConfig,
) -> list[float]:
    """Deterministic window anchors, biased toward failure activity.

    Windows open shortly before a fail event (so the crash, its detection,
    and the degraded aftermath all land inside); with fewer fail events than
    windows the remainder falls back to even spacing across the horizon.
    """
    latest = max(0.0, config.horizon - config.window_duration)
    lead = config.window_duration / 4.0
    fails = [
        event.at
        for event in schedule.events
        if isinstance(event, FailEvent) and 0.0 < event.at < config.horizon
    ]
    starts: list[float] = []
    if fails:
        count = min(config.num_windows, len(fails))
        step = (len(fails) - 1) / max(count - 1, 1)
        for index in range(count):
            anchor = fails[round(index * step)]
            starts.append(min(max(0.0, anchor - lead), latest))
    while len(starts) < config.num_windows:
        index = len(starts)
        starts.append(min((index + 0.5) * config.horizon / config.num_windows, latest))
    return starts


def _window_config(
    config: CampaignConfig,
    window: FailureSchedule,
    jobs: tuple[JobConfig, ...],
    policy: str,
    window_index: int,
) -> SimulationConfig:
    """The full-fidelity trial config for one (window, policy) cell."""
    return dataclasses.replace(
        config.base,
        jobs=jobs,
        failure=FailurePattern.NONE,
        failure_time=None,
        failure_schedule=window,
        scheduler=policy,
        seed=config.seed + 1000 + window_index,
        repair=config.repair,
        wait_for_repair=False,
        # Open-loop campaigns measure repeated degraded service on the same
        # nodes; blacklisting every struggling node would empty the cluster.
        blacklist_threshold=None,
    )


def _fit_slope(points: list[tuple[float, float]]) -> float | None:
    """Least-squares slope of y over x; None when underdetermined."""
    if len(points) < 2:
        return None
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var == 0.0:
        return None
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return cov / var


def _summarize_policy(rows: list[dict | None]) -> dict:
    """Aggregate one policy's window telemetry into the report entry.

    Digests merge **in window order** -- the trial order ``run_many``
    returns -- which is the canonical order that keeps serial and
    process-pool campaigns bit-identical (float ``total`` sums are
    order-dependent).  The merged digests ride along in the policy row's
    ``telemetry`` block so reports stay mergeable downstream
    (``repro obs report`` / cross-campaign aggregation).
    """
    degraded = LatencyDigest()
    sojourn = LatencyDigest()
    makespan = LatencyDigest()
    submitted = completed = failed = 0
    slopes: list[float] = []
    loss_windows = 0
    for row in rows:
        if row is None:
            loss_windows += 1
            continue
        if row["data_loss"]:
            loss_windows += 1
        jobs = row["jobs"]
        submitted += jobs["submitted"]
        completed += jobs["completed"]
        failed += jobs["failed"]
        digests = row["digests"]
        degraded.merge(LatencyDigest.from_dict(digests["degraded_read"]))
        sojourn.merge(LatencyDigest.from_dict(digests["sojourn"]))
        makespan.merge(LatencyDigest.from_dict(digests["makespan"]))
        if row["slope"] is not None:
            slopes.append(row["slope"])
    mean_slope = sum(slopes) / len(slopes) if slopes else None
    if mean_slope is None:
        stability = "no-data"
    elif mean_slope > SATURATION_SLOPE:
        stability = "saturated"
    else:
        stability = "stable"
    return {
        "degraded_read_seconds": degraded.percentiles(),
        "jobs": {"submitted": submitted, "completed": completed, "failed": failed},
        "sojourn": {"mean": sojourn.mean, "slope": mean_slope},
        "stability": stability,
        "data_loss_windows": loss_windows,
        "telemetry": {
            "degraded_read": degraded.to_dict(),
            "sojourn": sojourn.to_dict(),
            "makespan": makespan.to_dict(),
        },
    }


# -- the campaign driver ------------------------------------------------------


def run_campaign(
    config: CampaignConfig,
    check: bool = False,
    journal_path: str | None = None,
    cache_dir: str | None = None,
) -> dict:
    """Run a full reliability campaign and return the report dict.

    With ``check`` on, generator determinism is asserted up front
    (:func:`repro.check.check_generator_determinism`) and every window trial
    runs under the invariant sanitizer (``REPRO_CHECK`` reaches the process
    pool); an :class:`~repro.check.InvariantViolationError` propagates.

    ``journal_path``/``cache_dir`` make the Phase B window sweep crash-safe
    and resumable via the campaign engine's write-ahead journal and
    verified result cache: re-running an interrupted campaign with the
    same journal skips finished windows and yields a bit-identical report
    (window telemetry payloads are plain JSON, so journal replay is exact).
    """
    topology = build_topology(config.base)
    params = config.base.code
    num_stripes = config.num_stripes
    assignment = RackConstrainedRandomPlacement(topology, params).place_file(
        num_stripes, RngStreams(config.seed)
    )
    service_time = params.k * config.base.block_size / config.repair.bandwidth_cap

    if check:
        from repro.check import (
            check_arrivals_determinism,
            check_generator_determinism,
        )

        check_generator_determinism(
            config.model, topology, config.seed, config.horizon
        )
        check_arrivals_determinism(
            config.arrivals, config.seed + 500, config.window_duration
        )

    # Phase A: availability over every iteration's independently seeded
    # year(s) of churn.  Iteration 0's schedule also anchors Phase B.
    totals = _AvailabilityStats()
    first_schedule: FailureSchedule | None = None
    iteration_rows: list[dict] = []
    second_half_bounded = True
    drained = True
    for iteration in range(config.iterations):
        schedule = config.model.generate(
            topology, RngStreams(config.seed + iteration), config.horizon
        )
        if first_schedule is None:
            first_schedule = schedule
        stats = _replay_availability(
            schedule,
            topology,
            assignment,
            params.parity,
            service_time,
            config.base.heartbeat_expiry,
            config.horizon,
        )
        totals.loss_events += stats.loss_events
        totals.lost_stripe_time += stats.lost_stripe_time
        totals.node_down_time += stats.node_down_time
        totals.blocks_repaired += stats.blocks_repaired
        totals.backlog_peak = max(totals.backlog_peak, stats.backlog_peak)
        totals.backlog_mean += stats.backlog_mean / config.iterations
        if stats.backlog_second_half_mean > 2.0 * stats.backlog_first_half_mean + 1.0:
            second_half_bounded = False
        if stats.backlog_final != 0:
            drained = False
        iteration_rows.append(
            {
                "seed": config.seed + iteration,
                "events": len(schedule),
                "loss_events": stats.loss_events,
                "backlog_peak": stats.backlog_peak,
                "blocks_repaired": stats.blocks_repaired,
            }
        )

    total_time = config.iterations * config.horizon
    total_blocks = num_stripes * params.n
    mttdl = total_time / totals.loss_events if totals.loss_events else None
    durability = 1.0 - totals.lost_stripe_time / (num_stripes * total_time)
    bounded = totals.backlog_peak <= total_blocks and second_half_bounded
    availability = {
        "total_time": total_time,
        "loss_events": totals.loss_events,
        "mttdl": mttdl,
        "mttdl_lower_bound": total_time if totals.loss_events == 0 else None,
        "censored": totals.loss_events == 0,
        "durability": durability,
        "node_downtime_fraction": totals.node_down_time
        / (config.base.num_nodes * total_time),
        "blocks_repaired": totals.blocks_repaired,
        "backlog": {
            "peak": totals.backlog_peak,
            "mean": totals.backlog_mean,
            "bounded": bounded,
            "drained": drained,
        },
        "iterations": iteration_rows,
    }

    # Phase B: windows cut from iteration 0, each run per policy with
    # open-loop arrivals at full MapReduce fidelity.
    starts = _window_starts(first_schedule, topology, config)
    windows: list[dict] = []
    grid: list[SimulationConfig] = []
    keys: list[tuple[int, str]] = []
    for index, start in enumerate(starts):
        window = slice_window(
            first_schedule, topology, start, config.window_duration
        )
        jobs = config.arrivals.generate(
            RngStreams(config.seed + 500 + index), config.window_duration
        )
        if not jobs:
            templates = getattr(config.arrivals, "templates", None) or (JobConfig(),)
            jobs = (dataclasses.replace(templates[0], submit_time=0.0),)
        windows.append(
            {
                "start": start,
                "duration": config.window_duration,
                "events": len(window),
                "jobs": len(jobs),
            }
        )
        for policy in config.policies:
            grid.append(_window_config(config, window, jobs, policy, index))
            keys.append((index, policy))

    from repro.experiments.common import run_many

    previous = os.environ.get("REPRO_CHECK")
    if check:
        os.environ["REPRO_CHECK"] = "1"
    try:
        results = run_many(
            grid,
            runner=_window_telemetry,
            journal_path=journal_path,
            cache_dir=cache_dir,
        )
    finally:
        if check:
            if previous is None:
                os.environ.pop("REPRO_CHECK", None)
            else:
                os.environ["REPRO_CHECK"] = previous

    by_policy: dict[str, list[dict | None]] = {
        policy: [] for policy in config.policies
    }
    for (_index, policy), result in zip(keys, results):
        by_policy[policy].append(result)

    return {
        "schema": REPORT_SCHEMA,
        "config": config.to_dict(),
        "checked": check,
        "availability": availability,
        "windows": windows,
        "policies": {
            policy: _summarize_policy(by_policy[policy])
            for policy in config.policies
        },
    }


def report_to_json(report: dict) -> str:
    """Canonical JSON for a campaign report (bit-identical across runs)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_report(report: dict) -> str:
    """Human-readable campaign summary (the CLI's default output)."""
    config = report["config"]
    availability = report["availability"]
    backlog = availability["backlog"]
    years = config["horizon"] / YEAR
    lines = [
        "== reliability campaign ==",
        f"model: {config['model']['kind']}  arrivals: {config['arrivals']['kind']}"
        f"  seed: {config['seed']}",
        f"horizon: {years:.2f} simulated year(s) x {config['iterations']}"
        f" iteration(s)  ({config['cluster']['num_nodes']} nodes,"
        f" ({config['cluster']['code'][0]},{config['cluster']['code'][1]}) code,"
        f" {config['cluster']['num_stripes']} stripes)",
    ]
    if availability["censored"]:
        lower_years = availability["mttdl_lower_bound"] / YEAR
        lines.append(
            f"MTTDL: no data loss observed (censored; >= {lower_years:.2f} years)"
        )
    else:
        lines.append(
            f"MTTDL: {availability['mttdl'] / YEAR:.3f} years"
            f" ({availability['loss_events']} loss event(s))"
        )
    lines.append(f"durability: {availability['durability']:.9f}")
    lines.append(
        f"repair backlog: peak {backlog['peak']} blocks, mean {backlog['mean']:.2f}"
        f" ({'bounded' if backlog['bounded'] else 'UNBOUNDED'},"
        f" {'drained' if backlog['drained'] else 'not drained'})"
        f"  blocks repaired: {availability['blocks_repaired']}"
    )
    lines.append(
        f"windows: {len(report['windows'])} x {config['window_duration']:.0f} s"
        " at full MapReduce fidelity"
    )
    for policy, row in report["policies"].items():
        latency = row["degraded_read_seconds"]
        if latency["count"]:
            tail = (
                f"degraded reads n={latency['count']}"
                f" p50={latency['p50']:.2f}s p95={latency['p95']:.2f}s"
                f" p99={latency['p99']:.2f}s"
            )
        else:
            tail = "degraded reads: none observed"
        jobs = row["jobs"]
        lines.append(
            f"  {policy:>3}: {tail}; jobs {jobs['completed']}/{jobs['submitted']}"
            f" completed; {row['stability']}"
            + (
                f" (slope {row['sojourn']['slope']:.3f})"
                if row["sojourn"]["slope"] is not None
                else ""
            )
            + (
                f"; {row['data_loss_windows']} data-loss window(s)"
                if row["data_loss_windows"]
                else ""
            )
        )
    if report["checked"]:
        lines.append("sanitizer: every window trial ran under the invariant monitor")
    return "\n".join(lines)


def main() -> str:
    """Registry entry point: a small default campaign, formatted."""
    config = CampaignConfig(
        model=ExponentialLifetimes(mttf=10.0 * DAY, mttr=4.0 * HOUR),
        horizon=0.1 * YEAR,
        iterations=1,
        num_windows=2,
    )
    return render_report(run_campaign(config))
