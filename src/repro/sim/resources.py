"""Simulation resources: slots, fluid fair-shared links, exclusive links.

Three resource kinds cover everything the MapReduce simulator needs:

* :class:`Semaphore` -- counting semaphore with a FIFO queue; models map and
  reduce slots.
* :class:`FluidNetwork` -- links whose active flows share bandwidth max-min
  fairly, recomputed whenever a flow starts or finishes.  This captures the
  paper's observation that two degraded reads entering one rack halve each
  other's throughput ("doubles the download time, from 10s to 20s").
* :class:`ExclusivePathNetwork` -- the literal CSIM "hold the communication
  link for a duration" semantics: a transfer occupies every link on its path
  exclusively; contending transfers queue.  Provided for the network-model
  ablation.

Observability (see :mod:`repro.obs`): each resource accepts an optional
*observer* -- ``None`` by default, so the off path costs one ``is not None``
check.  Observers are called synchronously (never via the event heap) with
slot-occupancy changes, flow starts/ends, and rate reallocations, so an
instrumented run's simulation trajectory is identical to an uninstrumented
one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Event, Simulator


class Semaphore:
    """Counting semaphore with FIFO granting.

    ``acquire`` returns an :class:`Event` that fires when a unit is granted;
    ``release`` returns one unit and wakes the queue head.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.available = capacity
        self.name = name
        self._queue: list[Event] = []
        #: Optional slot observer: ``slot_changed(now, name, in_use, capacity,
        #: queued)`` called synchronously on every occupancy/queue change.
        self.observer = None

    def _notify(self) -> None:
        self.observer.slot_changed(
            self._sim.now,
            self.name,
            self.capacity - self.available,
            self.capacity,
            len(self._queue),
        )

    def acquire(self) -> Event:
        """Request one unit; the returned event fires when granted."""
        grant = self._sim.event(name=f"sem:{self.name}")
        if self.available > 0:
            self.available -= 1
            grant.succeed()
        else:
            self._queue.append(grant)
        if self.observer is not None:
            self._notify()
        return grant

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self._queue:
            self._queue.pop(0).succeed()
        else:
            if self.available >= self.capacity:
                raise ValueError(f"semaphore {self.name!r} released above capacity")
            self.available += 1
        if self.observer is not None:
            self._notify()

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self.available > 0:
            self.available -= 1
            if self.observer is not None:
                self._notify()
            return True
        return False

    @property
    def queue_length(self) -> int:
        """Number of blocked acquirers."""
        return len(self._queue)


@dataclass
class _Flow:
    """One active fluid transfer."""

    links: tuple[str, ...]
    remaining: float
    done: Event
    size: float = 0.0
    rate: float = 0.0
    started_at: float = 0.0

    @property
    def finished(self) -> bool:
        """Whether the flow is complete, up to float residue.

        The tolerance is relative to the flow size: rate*elapsed debits can
        leave residues of a few bytes on 10^8-byte flows, and an absolute
        epsilon would livelock the completion scheduler.
        """
        return self.remaining <= max(1e-6 * self.size, 1e-9)


class FluidNetwork:
    """Max-min fair fluid bandwidth sharing across named links.

    Each flow crosses one or more links; at any instant the flow rates are
    the max-min fair allocation given each link's capacity.  Rates are
    recomputed whenever a flow starts or finishes, and the next completion
    is scheduled from the updated rates.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._capacities: dict[str, float] = {}
        self._flows: list[_Flow] = []
        self._last_update = 0.0
        self._pending_completion: dict | None = None
        #: Optional network observer: ``flow_started`` / ``flow_finished`` /
        #: ``rates_updated`` hooks, called synchronously (never via the heap).
        self.observer = None

    def add_link(self, name: str, capacity: float) -> None:
        """Register a link; capacity is in bytes (or bits) per second."""
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive, got {capacity}")
        if name in self._capacities:
            raise ValueError(f"duplicate link {name!r}")
        self._capacities[name] = capacity

    def has_link(self, name: str) -> bool:
        """Whether a link with this name exists."""
        return name in self._capacities

    @property
    def capacities(self) -> dict[str, float]:
        """A copy of the registered link capacities."""
        return dict(self._capacities)

    def transfer(self, links: list[str], size: float) -> Event:
        """Start a flow of ``size`` over ``links``; event fires on completion.

        An empty ``links`` list means an uncontended transfer that finishes
        instantly (used for node-local movement).
        """
        done = self._sim.event(name="flow")
        for link in links:
            if link not in self._capacities:
                raise KeyError(f"unknown link {link!r}")
        if size <= 0 or not links:
            done.succeed()
            return done
        self._advance()
        flow = _Flow(links=tuple(links), remaining=float(size), done=done,
                     size=float(size), started_at=self._sim.now)
        self._flows.append(flow)
        if self.observer is not None:
            self.observer.flow_started(self._sim.now, flow.links, flow.size)
        self._reschedule()
        return flow.done

    def active_flow_count(self, link: str | None = None) -> int:
        """Number of active flows, optionally restricted to one link."""
        if link is None:
            return len(self._flows)
        return sum(1 for flow in self._flows if link in flow.links)

    def cancel(self, done: Event) -> bool:
        """Abort the in-flight flow whose completion event is ``done``.

        Returns True if the flow was found and removed (its event will then
        never fire); False if it already completed or was never started.
        Used when a transfer's source node dies mid-flight: the connection
        breaks immediately and the bandwidth is redistributed to survivors.
        """
        for flow in self._flows:
            if flow.done is done:
                break
        else:
            return False
        self._advance()
        self._flows.remove(flow)
        if self.observer is not None and hasattr(self.observer, "flow_cancelled"):
            self.observer.flow_cancelled(
                self._sim.now,
                flow.links,
                flow.size,
                flow.size - flow.remaining,
            )
        self._reschedule()
        return True

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Debit progress accrued since the last rate change."""
        elapsed = self._sim.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
        self._last_update = self._sim.now

    def _recompute_rates(self) -> None:
        """Progressive-filling max-min fair allocation."""
        unfrozen = list(self._flows)
        residual = dict(self._capacities)
        for flow in self._flows:
            flow.rate = 0.0
        while unfrozen:
            # Bottleneck link: smallest fair share among links carrying flows.
            best_share = None
            for link, capacity in residual.items():
                count = sum(1 for flow in unfrozen if link in flow.links)
                if count == 0:
                    continue
                share = capacity / count
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = link
            if best_share is None:
                break
            frozen = [flow for flow in unfrozen if bottleneck in flow.links]
            for flow in frozen:
                flow.rate = best_share
                for link in flow.links:
                    residual[link] = max(0.0, residual[link] - best_share)
            del residual[bottleneck]
            unfrozen = [flow for flow in unfrozen if bottleneck not in flow.links]

    def _reschedule(self) -> None:
        """Recompute rates and arm the next completion callback."""
        self._recompute_rates()
        if self.observer is not None:
            link_rates: dict[str, float] = {}
            for flow in self._flows:
                for link in flow.links:
                    link_rates[link] = link_rates.get(link, 0.0) + flow.rate
            self.observer.rates_updated(self._sim.now, link_rates)
        if self._pending_completion is not None:
            self._pending_completion["cancelled"] = True
            self._pending_completion = None
        soonest: float | None = None
        for flow in self._flows:
            if flow.rate <= 0:
                continue
            eta = flow.remaining / flow.rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is None:
            return
        handle = {"cancelled": False}
        self._pending_completion = handle

        def fire() -> None:
            if handle["cancelled"]:
                return
            self._pending_completion = None
            self._advance()
            finished = [flow for flow in self._flows if flow.finished]
            self._flows = [flow for flow in self._flows if not flow.finished]
            for flow in finished:
                if self.observer is not None:
                    self.observer.flow_finished(
                        self._sim.now,
                        flow.links,
                        flow.size,
                        self._sim.now - flow.started_at,
                    )
                flow.done.succeed(self._sim.now - flow.started_at)
            self._reschedule()

        self._sim.call_in(soonest, fire)


class ExclusivePathNetwork:
    """Transfers hold every link on their path exclusively (CSIM semantics).

    Pending transfers sit in one global FIFO; whenever links free up, the
    queue is scanned in arrival order and every request whose links are all
    free is granted (first-fit, so a blocked wide request does not starve
    narrow ones behind it — matching how CSIM facility queues behave).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._capacities: dict[str, float] = {}
        self._busy: set[str] = set()
        self._queue: list[tuple[tuple[str, ...], float, Event]] = []
        #: Active holds by completion event, so a hold can be cancelled.
        self._active: dict[Event, dict] = {}
        #: Optional network observer (same protocol as FluidNetwork's).
        self.observer = None

    def add_link(self, name: str, capacity: float) -> None:
        """Register a link with the given capacity."""
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive, got {capacity}")
        if name in self._capacities:
            raise ValueError(f"duplicate link {name!r}")
        self._capacities[name] = capacity

    def has_link(self, name: str) -> bool:
        """Whether a link with this name exists."""
        return name in self._capacities

    @property
    def capacities(self) -> dict[str, float]:
        """A copy of the registered link capacities."""
        return dict(self._capacities)

    def _notify_rates(self) -> None:
        """Held links run at full capacity; everything else is idle."""
        self.observer.rates_updated(
            self._sim.now,
            {link: self._capacities[link] for link in self._busy},
        )

    def transfer(self, links: list[str], size: float) -> Event:
        """Queue a transfer over ``links``; event fires when it completes."""
        done = self._sim.event(name="hold")
        for link in links:
            if link not in self._capacities:
                raise KeyError(f"unknown link {link!r}")
        if size <= 0 or not links:
            done.succeed()
            return done
        self._queue.append((tuple(links), float(size), done))
        self._drain()
        return done

    def active_flow_count(self, link: str | None = None) -> int:
        """Busy-link count proxy, for interface parity with FluidNetwork."""
        if link is None:
            return len(self._busy)
        return 1 if link in self._busy else 0

    def cancel(self, done: Event) -> bool:
        """Abort a queued or in-flight hold whose completion event is ``done``.

        Returns True if found (the event will never fire), False otherwise.
        """
        for index, (_links, _size, pending) in enumerate(self._queue):
            if pending is done:
                del self._queue[index]
                return True
        handle = self._active.pop(done, None)
        if handle is None:
            return False
        handle["cancelled"] = True
        self._busy.difference_update(handle["links"])
        if self.observer is not None:
            if hasattr(self.observer, "flow_cancelled"):
                self.observer.flow_cancelled(
                    self._sim.now,
                    handle["links"],
                    handle["size"],
                    # Exclusive holds move no partial bytes; the hold simply ends.
                    0.0,
                )
            self._notify_rates()
        self._drain()
        return True

    def _drain(self) -> None:
        granted_any = True
        while granted_any:
            granted_any = False
            for index, (links, size, done) in enumerate(self._queue):
                if any(link in self._busy for link in links):
                    continue
                del self._queue[index]
                self._busy.update(links)
                duration = size / min(self._capacities[link] for link in links)
                started = self._sim.now
                handle = {"links": links, "size": size, "cancelled": False}
                self._active[done] = handle
                if self.observer is not None:
                    self.observer.flow_started(self._sim.now, links, size)
                    self._notify_rates()

                def release(
                    links=links, done=done, started=started, size=size, handle=handle
                ) -> None:
                    if handle["cancelled"]:
                        return
                    self._active.pop(done, None)
                    self._busy.difference_update(links)
                    if self.observer is not None:
                        self.observer.flow_finished(
                            self._sim.now, links, size, self._sim.now - started
                        )
                        self._notify_rates()
                    done.succeed(self._sim.now - started)
                    self._drain()

                self._sim.call_in(duration, release)
                granted_any = True
                break
