"""Job and task descriptions for the simulated MapReduce engine.

A *job* is split into map tasks (one per native block of its input file) and
a fixed number of reduce tasks.  Map tasks are classified at assignment time
relative to the slave they run on, following Section II-A of the paper:

* ``NODE_LOCAL`` -- the block is stored on the slave itself;
* ``RACK_LOCAL`` -- the block is on another node of the slave's rack
  (the paper folds this into "local");
* ``REMOTE`` -- the block is in a different rack and must be downloaded;
* ``DEGRADED`` -- the block is lost and must be reconstructed via a
  degraded read of ``k`` surviving blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.storage.block import BlockId


class TaskKind(enum.Enum):
    """Map or reduce."""

    MAP = "map"
    REDUCE = "reduce"


class MapTaskCategory(enum.Enum):
    """Locality class of a map task, fixed at assignment time."""

    NODE_LOCAL = "node-local"
    RACK_LOCAL = "rack-local"
    REMOTE = "remote"
    DEGRADED = "degraded"

    @property
    def is_local(self) -> bool:
        """The paper's 'local' bucket: node-local or rack-local."""
        return self in (MapTaskCategory.NODE_LOCAL, MapTaskCategory.RACK_LOCAL)


@dataclass(frozen=True)
class MapAssignment:
    """A map task handed to a slave in a heartbeat response.

    ``speculative`` marks a backup attempt of a task that is already
    running elsewhere; the first finisher wins and the other attempt is
    interrupted.
    """

    job_id: int
    block: BlockId
    category: MapTaskCategory
    slave_id: int
    speculative: bool = False


@dataclass(frozen=True)
class ReduceAssignment:
    """A reduce task handed to a slave in a heartbeat response."""

    job_id: int
    reduce_index: int
    slave_id: int
