"""Unit tests for the synthetic corpus generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.testbed.textgen import COMMON_WORDS, build_vocabulary, generate_corpus


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = build_vocabulary(500, seed=1)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_common_core_first(self):
        vocab = build_vocabulary(200, seed=1)
        assert vocab[: len(COMMON_WORDS)] == list(COMMON_WORDS)

    def test_small_sizes(self):
        assert build_vocabulary(3, seed=1) == list(COMMON_WORDS[:3])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            build_vocabulary(0, seed=1)

    def test_deterministic(self):
        assert build_vocabulary(300, seed=7) == build_vocabulary(300, seed=7)


class TestCorpus:
    def test_size_approximate(self):
        corpus = generate_corpus(50_000, seed=1)
        assert len(corpus) <= 50_000
        assert len(corpus) > 45_000

    def test_ascii_lines(self):
        corpus = generate_corpus(10_000, seed=2)
        text = corpus.decode("ascii")
        lines = text.splitlines()
        assert len(lines) > 100
        for line in lines[:50]:
            assert 1 <= len(line.split()) <= 12

    def test_deterministic(self):
        assert generate_corpus(20_000, seed=3) == generate_corpus(20_000, seed=3)

    def test_seeds_differ(self):
        assert generate_corpus(20_000, seed=3) != generate_corpus(20_000, seed=4)

    def test_zipf_skew(self):
        """The most common word should dwarf the median word."""
        corpus = generate_corpus(100_000, seed=5)
        counts = Counter(corpus.decode().split())
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]

    def test_repeated_lines_present(self):
        corpus = generate_corpus(100_000, seed=6)
        lines = Counter(corpus.decode().splitlines())
        assert lines.most_common(1)[0][1] > 5

    def test_repetition_fraction_zero(self):
        corpus = generate_corpus(30_000, seed=7, repeated_line_fraction=0.0)
        lines = Counter(corpus.decode().splitlines())
        # Nearly all lines unique.
        assert lines.most_common(1)[0][1] <= 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_corpus(0)
