"""Acceptance tests for the trace-analytics pipeline (repro.obs.analyze et al).

The ISSUE-7 contract, end to end, on a fig-7-style failure run:

* the critical path is emitted and the map-time breakdown's component
  sums reproduce the measured map times to float precision;
* digest aggregation is bit-identical between serial and process-pool
  campaigns (canonical trial-order merge);
* the scheduler decision trace is identical whether trials run serially
  or through the pool (golden equivalence);
* ``repro obs diff`` exits nonzero on an injected >=10% makespan
  regression;
* analysis is purely post-hoc: running it perturbs nothing;
* the Chrome trace carries the repair-driver lane and
  corruption/recovery instants alongside the task rows.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro import cli
from repro.cluster.network import MB, mbps
from repro.ec.codec import CodeParams
from repro.experiments.common import run_many, run_many_digested
from repro.faults.schedule import (
    CorruptEvent,
    FailEvent,
    FailureSchedule,
    RecoverEvent,
)
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.job import MapTaskCategory, TaskKind
from repro.mapreduce.simulation import run_simulation
from repro.mapreduce.trace import to_json
from repro.obs import (
    REPAIR_PID,
    ObservabilityCollector,
    Timeline,
    analyze_run,
    chrome_trace,
    events_jsonl,
    read_events_jsonl,
    sanitize,
)
from repro.obs.analyze import traced_decisions
from repro.storage.repair_driver import RepairConfig


def _fig7_failure_config(seed: int = 7) -> SimulationConfig:
    """EDF trial with a mid-run node failure: the fig-7 acceptance run."""
    return SimulationConfig(
        scheduler="EDF",
        seed=seed,
        jobs=(JobConfig(num_blocks=400, num_reduce_tasks=8),),
        failure_schedule=FailureSchedule(events=(FailEvent(at=5.0, node=3),)),
        heartbeat_expiry=10.0,
    )


def _campaign_configs() -> list[SimulationConfig]:
    """Four cheap trials -- enough to force the process-pool path."""
    base = SimulationConfig(
        scheduler="EDF",
        num_nodes=12,
        num_racks=3,
        map_slots=2,
        reduce_slots=1,
        code=CodeParams(6, 4),
        block_size=64 * MB,
        rack_bandwidth=mbps(1000),
        jobs=(
            JobConfig(
                num_blocks=96,
                num_reduce_tasks=4,
                map_time_mean=10.0,
                map_time_std=0.5,
            ),
        ),
        failure_schedule=FailureSchedule(events=(FailEvent(at=5.0, node=2),)),
        heartbeat_expiry=9.0,
    )
    return [dataclasses.replace(base, seed=seed) for seed in range(4)]


@pytest.fixture(scope="module")
def analyzed_failure_run():
    config = _fig7_failure_config()
    collector = ObservabilityCollector()
    result = run_simulation(config, observer=collector)
    return config, result, collector, analyze_run(result)


class TestCriticalPath:
    def test_path_is_emitted_and_well_formed(self, analyzed_failure_run):
        _config, _result, _collector, analysis = analyzed_failure_run
        chain = analysis.chain
        assert chain, "a failure run must yield a non-empty critical path"
        assert chain[0].edge == "submit"
        assert all(
            step.edge in ("submit", "slot-wait", "shuffle-wait") for step in chain
        )
        finishes = [step.span.finish for step in chain]
        assert finishes == sorted(finishes)
        assert finishes[-1] == pytest.approx(analysis.timeline.end)
        coverage = analysis.to_dict()["critical_path"]["coverage"]
        assert 0.0 < coverage <= 1.0

    def test_failure_run_schedules_degraded_tasks(self, analyzed_failure_run):
        _config, _result, _collector, analysis = analyzed_failure_run
        assert analysis.breakdown["degraded"]["tasks"] > 0
        assert analysis.digests["degraded_read"].count > 0


class TestBreakdownAttribution:
    def test_components_sum_to_measured_map_times(self, analyzed_failure_run):
        """Table-1 identity: read + compute reproduces every measured time."""
        _config, result, _collector, analysis = analyzed_failure_run
        measured: dict[str, dict] = {}
        for job in result.jobs.values():
            for task in job.tasks:
                if not math.isfinite(task.finish_time):
                    continue
                if task.kind is TaskKind.REDUCE:
                    label = "reduce"
                else:
                    label = task.category.value if task.category else "node-local"
                row = measured.setdefault(label, {"tasks": 0, "total": 0.0, "read": 0.0})
                row["tasks"] += 1
                row["total"] += task.finish_time - task.launch_time
                row["read"] += task.download_time
        for label, expect in measured.items():
            row = analysis.breakdown[label]
            assert row["tasks"] == expect["tasks"]
            assert row["total_s"] == pytest.approx(expect["total"], rel=1e-12)
            assert row["read_s"] == pytest.approx(expect["read"], rel=1e-12)
            assert row["read_s"] + row["compute_s"] == pytest.approx(
                row["total_s"], rel=1e-12
            )
        # Categories with no measured tasks must report zero, not garbage.
        for label, row in analysis.breakdown.items():
            if label not in measured:
                assert row["tasks"] == 0

    def test_summary_paragraph_quotes_the_run(self, analyzed_failure_run):
        _config, result, _collector, analysis = analyzed_failure_run
        text = analysis.summary_paragraph()
        assert f"makespan {analysis.timeline.makespan:.1f} s" in text
        assert "degraded" in text


class TestEventLogRoundTrip:
    def test_timeline_from_events_matches_from_result(self, analyzed_failure_run):
        """The exported JSONL log carries the full timeline, losslessly."""
        _config, result, collector, _analysis = analyzed_failure_run
        events = read_events_jsonl(events_jsonl(collector.events))
        from_log = Timeline.from_events(events)
        from_result = Timeline.from_result(result)
        assert len(from_log.spans) == len(from_result.spans)
        assert from_log.makespan == pytest.approx(from_result.makespan)

        def key(span):
            return (
                span.job_id,
                span.kind,
                span.node,
                round(span.launch, 9),
                round(span.finish, 9),
                round(span.read, 9),
            )

        assert sorted(map(key, from_log.spans)) == sorted(map(key, from_result.spans))
        # The log-side analysis additionally carries the decision audit.
        audit = analyze_run(events).audit
        assert audit is not None
        assert audit["scheduler"] == "EDF"
        assert audit["assignments"] > 0


class TestDigestBitIdentity:
    def test_serial_and_pool_aggregation_are_bit_identical(self, monkeypatch):
        configs = _campaign_configs()
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = run_many_digested(configs)
        monkeypatch.setenv("REPRO_WORKERS", "4")
        pooled = run_many_digested(configs)
        assert set(serial) == {"degraded_read", "sojourn", "makespan"}
        for name in serial:
            assert serial[name].to_dict() == pooled[name].to_dict(), name
        assert serial["degraded_read"].count > 0

    def test_digests_match_a_directly_folded_reference(self, monkeypatch):
        from repro.obs.digest import LatencyDigest, digest_result

        configs = _campaign_configs()
        monkeypatch.setenv("REPRO_WORKERS", "1")
        merged = run_many_digested(configs)
        reference: dict[str, LatencyDigest] = {}
        for result in run_many(configs):
            for name, digest in digest_result(result).items():
                if name in reference:
                    reference[name].merge(digest)
                else:
                    reference[name] = digest
        for name, digest in reference.items():
            assert merged[name].to_dict() == digest.to_dict(), name


class TestDecisionTraceGolden:
    def test_serial_and_pool_decision_traces_are_identical(self, monkeypatch):
        configs = _campaign_configs()
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = run_many(configs, runner=traced_decisions)
        monkeypatch.setenv("REPRO_WORKERS", "4")
        pooled = run_many(configs, runner=traced_decisions)
        assert serial == pooled
        assert all(trace for trace in serial)
        first = serial[0][0]
        assert first["kind"] == "sched.decision"
        assert first["scheduler"] == "EDF"


class TestDiffGate:
    def _write_summary(self, path, payload):
        path.write_text(json.dumps(sanitize(payload), allow_nan=False))

    def test_injected_makespan_regression_exits_nonzero(
        self, analyzed_failure_run, tmp_path, capsys
    ):
        _config, _result, _collector, analysis = analyzed_failure_run
        baseline = analysis.to_dict()
        regressed = dict(baseline, makespan_s=baseline["makespan_s"] * 1.12)
        base_file = tmp_path / "baseline.json"
        cand_file = tmp_path / "regressed.json"
        self._write_summary(base_file, baseline)
        self._write_summary(cand_file, regressed)
        code = cli.main(["obs", "diff", str(base_file), str(cand_file)])
        assert code == 4
        out = capsys.readouterr().out
        assert "makespan_s" in out
        assert "regression" in out

    def test_identical_documents_exit_zero(
        self, analyzed_failure_run, tmp_path, capsys
    ):
        _config, _result, _collector, analysis = analyzed_failure_run
        payload = analysis.to_dict()
        base_file = tmp_path / "a.json"
        cand_file = tmp_path / "b.json"
        self._write_summary(base_file, payload)
        self._write_summary(cand_file, payload)
        assert cli.main(["obs", "diff", str(base_file), str(cand_file)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_sub_threshold_drift_passes_until_overridden(
        self, analyzed_failure_run, tmp_path
    ):
        _config, _result, _collector, analysis = analyzed_failure_run
        baseline = analysis.to_dict()
        drifted = dict(baseline, makespan_s=baseline["makespan_s"] * 1.05)
        base_file = tmp_path / "base.json"
        cand_file = tmp_path / "drift.json"
        self._write_summary(base_file, baseline)
        self._write_summary(cand_file, drifted)
        assert cli.main(["obs", "diff", str(base_file), str(cand_file)]) == 0
        assert (
            cli.main(
                [
                    "obs",
                    "diff",
                    str(base_file),
                    str(cand_file),
                    "--metric-threshold",
                    "makespan_s=0.02",
                ]
            )
            == 4
        )


class TestZeroPerturbation:
    def test_analysis_is_purely_post_hoc(self):
        """Analyzing a result must not change it -- and an instrumented run
        analyzed end to end stays byte-identical to a bare one."""
        config = _fig7_failure_config(seed=11)
        bare = run_simulation(config)
        collector = ObservabilityCollector()
        instrumented = run_simulation(config, observer=collector)
        before = to_json(instrumented)
        analysis = analyze_run(instrumented)
        analysis.to_dict()
        analysis.render_text()
        analyze_run(read_events_jsonl(events_jsonl(collector.events)))
        assert to_json(instrumented) == before
        assert to_json(bare) == before


class TestChromeTraceFaultLanes:
    @pytest.fixture(scope="class")
    def fault_trace(self):
        config = SimulationConfig(
            num_nodes=12,
            num_racks=3,
            map_slots=2,
            reduce_slots=1,
            code=CodeParams(6, 4),
            block_size=64 * MB,
            rack_bandwidth=mbps(1000),
            jobs=(
                JobConfig(
                    num_blocks=96,
                    num_reduce_tasks=4,
                    submit_time=10.0,
                    map_time_mean=10.0,
                    map_time_std=0.5,
                ),
            ),
            failure_schedule=FailureSchedule(
                events=(
                    FailEvent(at=0.0, node=0),
                    CorruptEvent(at=2.0, stripe=0, position=0),
                    RecoverEvent(at=80.0, node=0),
                )
            ),
            heartbeat_expiry=9.0,
            repair=RepairConfig(bandwidth_cap=mbps(400)),
            seed=5,
        )
        result = run_simulation(config)
        return result, chrome_trace(result)

    def test_repair_driver_gets_its_own_labelled_lane(self, fault_trace):
        result, trace = fault_trace
        assert result.faults.repairs, "config must provoke repairs"
        events = trace["traceEvents"]
        rebuilds = [
            e for e in events if e.get("pid") == REPAIR_PID and e["ph"] == "X"
        ]
        assert len(rebuilds) == len(result.faults.repairs)
        assert all(e["cat"] == "repair" for e in rebuilds)
        labels = [
            e
            for e in events
            if e.get("pid") == REPAIR_PID and e["ph"] == "M"
        ]
        assert labels and labels[0]["args"]["name"] == "repair driver"

    def test_corruption_and_recovery_instants_are_drawn(self, fault_trace):
        result, trace = fault_trace
        assert result.faults.corruptions and result.faults.recoveries
        events = trace["traceEvents"]
        corrupt = [
            e for e in events if e["ph"] == "i" and e["name"].startswith("block corrupt")
        ]
        recovered = [
            e for e in events if e["ph"] == "i" and "recovered" in e["name"]
        ]
        assert len(corrupt) == len(result.faults.corruptions)
        assert len(recovered) == len(result.faults.recoveries)
        assert corrupt[0]["args"]["via"] in ("read", "scrub")

    def test_degraded_download_phases_are_drawn(self, analyzed_failure_run):
        _config, result, _collector, _analysis = analyzed_failure_run
        events = chrome_trace(result)["traceEvents"]
        degraded_downloads = [
            e
            for e in events
            if e["ph"] == "X"
            and e.get("cat") == "download"
            and e["args"].get("category") == MapTaskCategory.DEGRADED.value
        ]
        measured = sum(
            1
            for job in result.jobs.values()
            for task in job.tasks
            if task.kind is TaskKind.MAP
            and task.category is MapTaskCategory.DEGRADED
            and math.isfinite(task.finish_time)
            and task.download_time > 0
        )
        assert measured > 0
        assert len(degraded_downloads) == measured
