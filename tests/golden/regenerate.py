"""Regenerate the golden trajectory files.

Usage (from the repository root)::

    PYTHONPATH=src:. python tests/golden/regenerate.py

Only run this after an *intentional* semantic change to the simulator --
the point of the goldens is that performance work never moves a trajectory.

Set ``GOLDEN_OUT=<dir>`` to write somewhere other than ``tests/golden/``;
CI's golden-freshness check uses this to regenerate into a scratch tree
and diff it against the committed files.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from tests.integration.test_golden_equivalence import capture, golden_cases  # noqa: E402
from tests.integration.test_policy_differential import capture_steal_trace  # noqa: E402


def _write(out_dir: str, name: str, payload: dict) -> str:
    path = os.path.join(out_dir, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return path


def main() -> None:
    out_dir = os.environ.get("GOLDEN_OUT") or os.path.dirname(os.path.abspath(__file__))
    os.makedirs(out_dir, exist_ok=True)
    for name, config in sorted(golden_cases().items()):
        payload = capture(config)
        path = _write(out_dir, name, payload)
        print(f"wrote {path} (dispatched={payload['dispatched']})")
    trace = capture_steal_trace()
    path = _write(out_dir, "steal-decisions", trace)
    print(f"wrote {path} (decisions={len(trace['decisions'])})")


if __name__ == "__main__":
    main()
