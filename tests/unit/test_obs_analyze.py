"""Unit tests for trace analytics (repro.obs.analyze) on synthetic timelines."""

import math

import pytest

from repro.obs.analyze import (
    RUN_SUMMARY_SCHEMA,
    JobWindow,
    TaskSpan,
    Timeline,
    analyze_timeline,
    critical_path,
    decision_audit,
    map_time_breakdown,
    path_coverage,
)
from repro.obs.events import ObsEvent


def _span(job=0, kind="map", category="node-local", node=0, launch=0.0,
          finish=10.0, read=0.0, **extra):
    return TaskSpan(
        job_id=job, kind=kind, category=category, node=node,
        launch=launch, finish=finish, read=read, **extra,
    )


def _timeline(spans, submit=0.0):
    finish = max(span.finish for span in spans)
    first = min(span.launch for span in spans)
    return Timeline(
        spans=list(spans),
        jobs={0: JobWindow(job_id=0, submit=submit, first_launch=first, finish=finish)},
        scheduler="EDF",
        seed=3,
    )


class TestCriticalPath:
    def test_three_edge_kinds_on_a_handoff_chain(self):
        # map A holds node 0's slot, map B takes over the instant A
        # finishes, and the reduce (which idled on shuffle) completes when
        # B -- the last map -- drains.
        map_a = _span(launch=0.0, finish=10.0)
        map_b = _span(category="degraded", launch=10.0, finish=25.0, read=5.0)
        reduce_span = _span(kind="reduce", category=None, node=1,
                            launch=5.0, finish=40.0, read=12.0)
        chain = critical_path(_timeline([map_a, map_b, reduce_span]))
        assert [step.edge for step in chain] == ["submit", "slot-wait", "shuffle-wait"]
        assert [step.span.finish for step in chain] == [10.0, 25.0, 40.0]
        # Execution order: root first, last-finishing span last.
        assert chain[-1].span is reduce_span

    def test_reduce_without_shuffle_wait_roots_at_submit(self):
        lone = _span(kind="reduce", category=None, read=0.0, finish=30.0)
        chain = critical_path(_timeline([lone]))
        assert len(chain) == 1
        assert chain[0].edge == "submit"

    def test_empty_timeline_has_no_path(self):
        assert critical_path(Timeline()) == []

    def test_coverage_is_clamped_to_one(self):
        # Two fully overlapping spans chained by a contrived handoff would
        # sum past the makespan; coverage must never exceed 1.0.
        spans = [
            _span(launch=0.0, finish=20.0),
            _span(node=1, launch=0.0, finish=20.0),
        ]
        timeline = _timeline(spans)
        fake_chain = critical_path(timeline) * 2
        assert path_coverage(timeline, fake_chain) <= 1.0

    def test_step_to_dict_carries_the_phase_split(self):
        step = critical_path(_timeline([_span(finish=10.0, read=4.0)]))[0]
        payload = step.to_dict()
        assert payload["read_s"] == pytest.approx(4.0)
        assert payload["compute_s"] == pytest.approx(6.0)
        assert payload["edge"] == "submit"


class TestMapTimeBreakdown:
    def test_read_plus_compute_equals_total_exactly(self):
        spans = [
            _span(category="node-local", launch=0.0, finish=9.7),
            _span(category="degraded", launch=1.0, finish=17.3, read=6.1),
            _span(category="remote", launch=2.0, finish=13.9, read=2.2),
            _span(kind="reduce", category=None, launch=0.0, finish=30.0, read=8.0),
        ]
        rows = map_time_breakdown(_timeline(spans))
        for row in rows.values():
            assert row["read_s"] + row["compute_s"] == pytest.approx(
                row["total_s"], abs=1e-12
            )
        assert rows["degraded"]["tasks"] == 1
        assert rows["degraded"]["read_s"] == pytest.approx(6.1)
        assert rows["reduce"]["read_s"] == pytest.approx(8.0)
        assert rows["node-local"]["mean_s"] == pytest.approx(9.7)
        assert rows["rack-local"]["tasks"] == 0
        assert rows["rack-local"]["mean_s"] is None

    def test_unknown_category_gets_its_own_row(self):
        rows = map_time_breakdown(_timeline([_span(category="weird")]))
        assert rows["weird"]["tasks"] == 1


class TestDecisionAudit:
    def test_empty_stream_yields_none(self):
        assert decision_audit([]) is None

    def test_counters_and_rates(self):
        decisions = [
            {"scheduler": "EDF", "action": "assign", "category": "node-local"},
            {"scheduler": "EDF", "action": "assign", "category": "rack-local"},
            {"scheduler": "EDF", "action": "assign", "category": "degraded",
             "reason": "degraded-first"},
            {"scheduler": "EDF", "action": "skip-degraded", "reason": "slave-guard"},
            {"scheduler": "EDF", "action": "skip-degraded", "reason": "rack-guard"},
            {"scheduler": "EDF", "action": "skip-degraded", "reason": "pacing"},
        ]
        audit = decision_audit(decisions)
        assert audit["scheduler"] == "EDF"
        assert audit["decisions"] == 6
        assert audit["assignments"] == 3
        assert audit["locality_rate"] == pytest.approx(2 / 3)
        assert audit["degraded_rate"] == pytest.approx(1 / 3)
        assert audit["guard"] == {
            "admitted": 1,
            "slave_rejected": 1,
            "rack_rejected": 1,
        }
        assert audit["pacing_deferrals"] == 1
        assert audit["skipped"] == {"slave-guard": 1, "rack-guard": 1, "pacing": 1}

    def test_all_skips_has_none_rates(self):
        audit = decision_audit(
            [{"scheduler": "BDF", "action": "skip-degraded", "reason": "pacing"}]
        )
        assert audit["assignments"] == 0
        assert audit["locality_rate"] is None
        assert audit["degraded_rate"] is None


class TestFromEvents:
    def _events(self):
        return [
            ObsEvent(0.0, "job.submit", {"job_id": 0}),
            ObsEvent(0.0, "sched.decision",
                     {"scheduler": "EDF", "action": "assign",
                      "category": "degraded", "job_id": 0}),
            ObsEvent(0.0, "task.launch",
                     {"job_id": 0, "task": "map", "node": 2, "block": 7}),
            ObsEvent(12.5, "task.finish",
                     {"job_id": 0, "task": "map", "node": 2, "block": 7,
                      "runtime": 12.5, "download": 4.0, "category": "degraded"}),
            ObsEvent(12.5, "task.launch",
                     {"job_id": 0, "task": "reduce", "node": 3, "reduce_index": 0}),
            ObsEvent(20.0, "task.finish",
                     {"job_id": 0, "task": "reduce", "node": 3, "reduce_index": 0,
                      "runtime": 7.5, "download": 2.0}),
            ObsEvent(20.0, "job.finish", {"job_id": 0}),
        ]

    def test_round_trip_builds_spans_jobs_and_decisions(self):
        timeline = Timeline.from_events(self._events())
        assert len(timeline.spans) == 2
        assert timeline.scheduler == "EDF"
        assert timeline.makespan == pytest.approx(20.0)
        degraded = next(span for span in timeline.spans if span.kind == "map")
        assert degraded.category == "degraded"
        assert degraded.read == pytest.approx(4.0)
        assert timeline.jobs[0].finish == pytest.approx(20.0)
        assert len(timeline.decisions) == 1
        assert timeline.event_counts["task.finish"] == 2

    def test_killed_attempt_leaves_no_span(self):
        events = [
            ObsEvent(0.0, "job.submit", {"job_id": 0}),
            ObsEvent(1.0, "task.launch",
                     {"job_id": 0, "task": "map", "node": 0, "block": 1}),
            ObsEvent(5.0, "task.kill",
                     {"job_id": 0, "task": "map", "node": 0, "block": 1}),
        ]
        timeline = Timeline.from_events(events)
        assert timeline.spans == []
        assert math.isnan(timeline.jobs[0].finish)

    def test_concurrent_attempts_match_on_runtime_not_fifo(self):
        # Two attempts of the same task identity are open at once; the
        # finish events carry runtimes that identify which launch is whose.
        events = [
            ObsEvent(0.0, "job.submit", {"job_id": 0}),
            ObsEvent(0.0, "task.launch",
                     {"job_id": 0, "task": "map", "node": 1, "block": 3}),
            ObsEvent(2.0, "task.launch",
                     {"job_id": 0, "task": "map", "node": 1, "block": 3,
                      "speculative": True}),
            # The *second* launch finishes first in wall order at t=12 with
            # runtime 10 -> matches the launch at t=2, not the FIFO head.
            ObsEvent(12.0, "task.finish",
                     {"job_id": 0, "task": "map", "node": 1, "block": 3,
                      "runtime": 10.0}),
            ObsEvent(15.0, "task.finish",
                     {"job_id": 0, "task": "map", "node": 1, "block": 3,
                      "runtime": 15.0}),
        ]
        timeline = Timeline.from_events(events)
        launches = sorted(span.launch for span in timeline.spans)
        assert launches == [0.0, 2.0]
        by_launch = {span.launch: span for span in timeline.spans}
        assert by_launch[2.0].finish == pytest.approx(12.0)
        assert by_launch[2.0].speculative is True
        assert by_launch[0.0].finish == pytest.approx(15.0)


class TestRunAnalysis:
    def _analysis(self):
        spans = [
            _span(launch=0.0, finish=10.0),
            _span(category="degraded", launch=10.0, finish=25.0, read=5.0),
            _span(kind="reduce", category=None, node=1, launch=5.0,
                  finish=40.0, read=12.0),
        ]
        timeline = _timeline(spans)
        timeline.decisions = [
            {"scheduler": "EDF", "action": "assign", "category": "degraded"},
        ]
        return analyze_timeline(timeline)

    def test_to_dict_is_the_versioned_run_summary(self):
        payload = self._analysis().to_dict()
        assert payload["schema"] == RUN_SUMMARY_SCHEMA
        assert payload["makespan_s"] == pytest.approx(40.0)
        assert payload["tasks"] == 3
        assert payload["critical_path"]["steps"]
        assert 0.0 < payload["critical_path"]["coverage"] <= 1.0
        assert payload["audit"]["scheduler"] == "EDF"
        assert payload["digests"]["degraded_read"]["count"] == 1
        assert payload["jobs"]["0"]["runtime_s"] == pytest.approx(40.0)

    def test_summary_paragraph_reads_like_a_sentence(self):
        text = self._analysis().summary_paragraph()
        assert "makespan 40.0 s" in text
        assert "degraded" in text
        assert "Critical path" in text
        assert "Decisions" in text

    def test_render_text_lists_breakdown_and_path(self):
        text = self._analysis().render_text()
        assert "== run analysis ==" in text
        assert "map-time breakdown" in text
        assert "critical path" in text
        assert "[slot-wait" in text
        assert "degraded-read latency" in text

    def test_analyze_timeline_digest_counts(self):
        analysis = self._analysis()
        assert analysis.digests["map_runtime"].count == 2
        assert analysis.digests["reduce_runtime"].count == 1
        assert analysis.digests["degraded_read"].count == 1
        assert analysis.digests["degraded_read"].total == pytest.approx(5.0)
