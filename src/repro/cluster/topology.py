"""Nodes, racks and the two-level cluster topology.

The paper's clusters (Figures 1 and 2) are two-level: nodes connect to a
top-of-rack switch, top-of-rack switches connect to a core switch.  A
:class:`ClusterTopology` is an immutable description of that structure plus
per-node compute characteristics (slot counts, relative speed) used by the
heterogeneous-cluster experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """One server in the cluster.

    Parameters
    ----------
    node_id:
        Cluster-wide identifier, dense from 0.
    rack_id:
        Identifier of the rack this node lives in.
    map_slots:
        Number of map tasks the node can run concurrently.
    reduce_slots:
        Number of reduce tasks the node can run concurrently.
    speed_factor:
        Relative compute speed; task processing time is divided by this, so
        2.0 means twice as fast and 0.5 half as fast.  Used by the
        heterogeneous and "extreme case" experiments (Figure 8).
    """

    node_id: int
    rack_id: int
    map_slots: int = 4
    reduce_slots: int = 1
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ValueError("slot counts must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError(f"speed factor must be positive, got {self.speed_factor}")


@dataclass(frozen=True)
class Rack:
    """A rack: an id plus the ids of its member nodes."""

    rack_id: int
    node_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.node_ids)


@dataclass(frozen=True)
class ClusterTopology:
    """Immutable description of a two-level cluster.

    Build with :meth:`homogeneous`, :meth:`from_rack_sizes` or
    :meth:`from_nodes`.
    """

    nodes: tuple[Node, ...]
    racks: tuple[Rack, ...]
    _node_by_id: dict[int, Node] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        by_id = {node.node_id: node for node in self.nodes}
        if len(by_id) != len(self.nodes):
            raise ValueError("duplicate node ids in topology")
        rack_ids = {rack.rack_id for rack in self.racks}
        if len(rack_ids) != len(self.racks):
            raise ValueError("duplicate rack ids in topology")
        for node in self.nodes:
            if node.rack_id not in rack_ids:
                raise ValueError(f"node {node.node_id} references unknown rack {node.rack_id}")
        for rack in self.racks:
            for node_id in rack.node_ids:
                if node_id not in by_id:
                    raise ValueError(f"rack {rack.rack_id} references unknown node {node_id}")
                if by_id[node_id].rack_id != rack.rack_id:
                    raise ValueError(
                        f"node {node_id} disagrees with rack {rack.rack_id} membership"
                    )
        object.__setattr__(self, "_node_by_id", by_id)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_nodes(cls, nodes: Sequence[Node]) -> "ClusterTopology":
        """Build a topology from an explicit node list; racks are inferred."""
        rack_members: dict[int, list[int]] = {}
        for node in nodes:
            rack_members.setdefault(node.rack_id, []).append(node.node_id)
        racks = tuple(
            Rack(rack_id=rack_id, node_ids=tuple(sorted(members)))
            for rack_id, members in sorted(rack_members.items())
        )
        return cls(nodes=tuple(nodes), racks=racks)

    @classmethod
    def from_rack_sizes(
        cls,
        rack_sizes: Sequence[int],
        map_slots: int = 4,
        reduce_slots: int = 1,
        speed_factors: Sequence[float] | None = None,
    ) -> "ClusterTopology":
        """Build a topology with the given number of nodes per rack.

        ``speed_factors``, if given, supplies one factor per node in
        node-id order; otherwise all nodes run at speed 1.0.
        """
        total = sum(rack_sizes)
        if speed_factors is not None and len(speed_factors) != total:
            raise ValueError(
                f"expected {total} speed factors, got {len(speed_factors)}"
            )
        nodes: list[Node] = []
        node_id = 0
        for rack_id, size in enumerate(rack_sizes):
            if size <= 0:
                raise ValueError(f"rack {rack_id} has non-positive size {size}")
            for _ in range(size):
                speed = 1.0 if speed_factors is None else speed_factors[node_id]
                nodes.append(
                    Node(
                        node_id=node_id,
                        rack_id=rack_id,
                        map_slots=map_slots,
                        reduce_slots=reduce_slots,
                        speed_factor=speed,
                    )
                )
                node_id += 1
        return cls.from_nodes(nodes)

    @classmethod
    def homogeneous(
        cls,
        num_nodes: int,
        num_racks: int,
        map_slots: int = 4,
        reduce_slots: int = 1,
    ) -> "ClusterTopology":
        """Build the paper's default layout: ``num_nodes`` spread evenly."""
        if num_racks <= 0:
            raise ValueError(f"need at least one rack, got {num_racks}")
        if num_nodes % num_racks != 0:
            raise ValueError(
                f"{num_nodes} nodes do not divide evenly into {num_racks} racks"
            )
        per_rack = num_nodes // num_racks
        return cls.from_rack_sizes(
            [per_rack] * num_racks, map_slots=map_slots, reduce_slots=reduce_slots
        )

    # -- queries ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self.nodes)

    @property
    def num_racks(self) -> int:
        """Total rack count."""
        return len(self.racks)

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        try:
            return self._node_by_id[node_id]
        except KeyError:
            raise KeyError(f"no node with id {node_id}") from None

    def rack_of(self, node_id: int) -> int:
        """Rack id of a node."""
        return self.node(node_id).rack_id

    def rack(self, rack_id: int) -> Rack:
        """Look up a rack by id."""
        for candidate in self.racks:
            if candidate.rack_id == rack_id:
                return candidate
        raise KeyError(f"no rack with id {rack_id}")

    def nodes_in_rack(self, rack_id: int) -> tuple[int, ...]:
        """Node ids in a rack."""
        return self.rack(rack_id).node_ids

    def same_rack(self, a: int, b: int) -> bool:
        """Whether two nodes share a rack."""
        return self.rack_of(a) == self.rack_of(b)

    def node_ids(self) -> Iterable[int]:
        """All node ids in ascending order."""
        return sorted(self._node_by_id)

    def total_map_slots(self, excluding: Iterable[int] = ()) -> int:
        """Total map slots, optionally excluding failed nodes."""
        excluded = set(excluding)
        return sum(node.map_slots for node in self.nodes if node.node_id not in excluded)
