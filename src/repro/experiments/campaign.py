"""Crash-safe campaign engine: journaled, fault-tolerant trial execution.

The paper's methodology (Section V-B) and the reliability campaigns turn
every question into a large sweep -- 30 seeds x schedulers x a parameter
grid -- and the execution layer must survive the sweep's own weather: a
pool worker killed by the OS, a trial that raises, a trial that hangs, a
driver interrupted halfway through a multi-hour campaign.  The bare
``pool.map`` the experiments used to run on loses the whole batch to any
of those; this module replaces it with a :class:`CampaignEngine` that
treats each trial as an individually tracked unit of work:

* **Per-trial futures, bounded retries, backoff.**  Each trial is
  dispatched to a dedicated worker process over its own pipe, so the
  engine always knows *which* trial a dead worker was running.  A worker
  killed by the OS (``kill -9``, OOM) or a trial exceeding its wall-clock
  ``trial_timeout`` costs one attempt and a requeue with exponential
  backoff -- never the batch.  A trial that exhausts its budget becomes a
  **typed failed-trial row** (:class:`TrialFailure`): ``failed`` when the
  trial itself raised, ``quarantined`` when it repeatedly killed or hung
  workers (the trial is suspect, not the fleet).
* **Write-ahead journal.**  With a ``journal_path``, every terminal trial
  outcome is appended to a JSONL journal before it is reported: an
  fsynced, self-verifying line carrying the trial's canonical spec hash
  and the sha256 of its canonical payload JSON.  A crash can tear at most
  the final line (which resume detects and ignores); every earlier line
  replays.  Re-running over an existing journal skips finished trials, so
  an interrupted-then-resumed campaign produces a report bit-identical to
  an uninterrupted one -- fresh payloads are normalised through the same
  canonical JSON round-trip that journal replay performs.
* **Checkpointing interrupts.**  SIGINT/SIGTERM stop dispatch, drain the
  trials already in flight, journal them, and raise
  :class:`CampaignInterrupted`; the CLI maps that to exit code 5.  A
  second signal aborts hard.
* **Result cache.**  With a :class:`~repro.experiments.cache.ResultCache`,
  finished trials are stored content-addressed by (canonical spec hash,
  code version) with sha256 payload verification; a later campaign
  containing the same trial gets it for free, and a corrupted entry is
  quarantined and recomputed, never deserialised into a report.

Journaling and caching require the runner's payload to be canonical-JSON
serialisable (digest/telemetry runners are; raw
:class:`~repro.mapreduce.metrics.SimulationResult` runners are not --
those still get worker fault tolerance, just not persistence).

On top of the engine sits the ``repro campaign`` sweep layer: a
:class:`SweepSpec` (base config x schedulers x seeds, schema
``repro.campaign/v1``) executed by :func:`run_sweep` into a canonically
ordered report (schema ``repro.campaign-report/v1``) whose scheduler rows
carry merged :class:`~repro.obs.digest.LatencyDigest` telemetry.  The
report deliberately excludes volatile execution counters (cache hits,
retries, journal replays) so interrupted-and-resumed campaigns stay
bit-identical to uninterrupted ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro import __version__ as CODE_VERSION
from repro.experiments.cache import (
    ResultCache,
    canonical_json,
    payload_sha256,
)
from repro.faults.errors import JobFailedError
from repro.mapreduce.config import SimulationConfig
from repro.mapreduce.serialization import config_from_dict, config_to_dict
from repro.mapreduce.simulation import run_simulation

#: Schema tags for the journal lines, the sweep spec, and the sweep report.
JOURNAL_SCHEMA = "repro.campaign-journal/v1"
SPEC_SCHEMA = "repro.campaign/v1"
REPORT_SCHEMA = "repro.campaign-report/v1"

#: How long (seconds) shutdown waits for a worker to exit before killing it.
_SHUTDOWN_GRACE = 2.0

#: Driver poll interval (seconds) while waiting for worker results.
_POLL = 0.05


class CampaignError(RuntimeError):
    """Base class for campaign-engine failures."""


class CampaignInterrupted(CampaignError):
    """The campaign checkpointed and stopped on SIGINT/SIGTERM.

    In-flight trials were drained and journaled first; ``remaining`` is
    the number of submitted trials with no terminal outcome yet.  Resume
    with the same journal to pick up exactly where this run stopped.
    """

    def __init__(self, remaining: int, counters: "CampaignCounters") -> None:
        super().__init__(
            f"campaign interrupted: {counters.done} trial(s) journaled, "
            f"{remaining} remaining"
        )
        self.remaining = remaining
        self.counters = counters


class CampaignTrialError(CampaignError):
    """A trial exhausted its retry budget (raise-mode terminal failure)."""

    def __init__(self, failure: "TrialFailure") -> None:
        super().__init__(
            f"trial {failure.index} {failure.status} after "
            f"{failure.attempts} attempt(s) [{failure.kind}]: {failure.message}"
        )
        self.failure = failure


class CampaignPayloadError(CampaignError):
    """A journaled/cached campaign got a non-JSON-serialisable payload."""


@dataclass(frozen=True)
class CampaignPolicy:
    """Execution policy: retries, timeouts, backoff, pool width.

    ``retries`` counts re-attempts after the first try (so a trial runs at
    most ``retries + 1`` times).  ``trial_timeout`` is wall-clock seconds
    per attempt; exceeding it kills the worker (enforced only in the
    process-pool path -- a serial in-process trial cannot be preempted).
    ``on_error`` selects what a trial-raised exception does: ``"raise"``
    propagates it immediately (the historical ``run_many`` contract, which
    the sanitizer's :class:`~repro.check.InvariantViolationError` relies
    on); ``"collect"`` retries it like a lost worker and records a typed
    :class:`TrialFailure` row when the budget runs out.
    """

    retries: int = 2
    trial_timeout: float | None = None
    backoff: float = 0.5
    workers: int | None = None
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError(
                f"trial_timeout must be positive, got {self.trial_timeout}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.on_error not in ("raise", "collect"):
            raise ValueError(
                f"on_error must be 'raise' or 'collect', got {self.on_error!r}"
            )


@dataclass(frozen=True)
class TrialFailure:
    """The typed terminal record of a trial that never produced a result."""

    index: int
    spec: str
    #: What went wrong on the last attempt: ``error`` (the trial raised),
    #: ``worker-lost`` (the worker process died), or ``timeout``.
    kind: str
    #: ``failed`` for trial-raised errors, ``quarantined`` for trials that
    #: repeatedly killed or hung workers.
    status: str
    attempts: int
    message: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "spec": self.spec,
            "kind": self.kind,
            "status": self.status,
            "attempts": self.attempts,
            "message": self.message,
        }


@dataclass
class CampaignCounters:
    """Complete accounting of one engine run.

    The engine guarantees ``done + failed + quarantined == submitted`` on
    normal completion (:meth:`consistent`); an interrupted run leaves the
    difference as the remaining work.  ``cached`` and ``replayed`` are
    subsets of ``done`` (cache hits and journal replays); ``retried``
    counts requeues.
    """

    submitted: int = 0
    done: int = 0
    cached: int = 0
    replayed: int = 0
    failed: int = 0
    quarantined: int = 0
    retried: int = 0

    def consistent(self) -> bool:
        return self.done + self.failed + self.quarantined == self.submitted

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "done": self.done,
            "cached": self.cached,
            "replayed": self.replayed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "retried": self.retried,
        }


@dataclass
class CampaignOutcome:
    """What :meth:`CampaignEngine.run` returns.

    ``results`` is aligned with the submitted configs; a trial with a
    terminal failure holds ``None`` and has a row in ``failures``.
    """

    results: list
    failures: list[TrialFailure]
    counters: CampaignCounters


# -- trial spec hashing -------------------------------------------------------


def runner_spec(runner) -> object:
    """A canonical, JSON-safe description of a trial runner.

    Module-level callables are named by ``module.qualname``; dataclass
    wrapper runners (e.g. :class:`~repro.experiments.common.DigestedRunner`)
    contribute their class name plus their fields, recursing into callable
    fields.  Runners may override this with a ``campaign_spec()`` method.
    """
    override = getattr(runner, "campaign_spec", None)
    if override is not None:
        return override()
    if dataclasses.is_dataclass(runner) and not isinstance(runner, type):
        spec: dict = {"kind": _qualname(type(runner))}
        for fld in dataclasses.fields(runner):
            value = getattr(runner, fld.name)
            spec[fld.name] = runner_spec(value) if callable(value) else value
        return spec
    return _qualname(runner)


def _qualname(obj) -> str:
    return f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"


def trial_spec_hash(config: SimulationConfig, runner) -> str:
    """The canonical content hash of one (config, runner) trial."""
    spec = {"config": config_to_dict(config), "runner": runner_spec(runner)}
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


# -- the write-ahead journal --------------------------------------------------


@dataclass
class JournalState:
    """What a journal replay recovered: verified done/terminal rows."""

    #: spec hash -> verified record (last occurrence wins).
    records: dict[str, dict] = field(default_factory=dict)
    #: Unparseable or integrity-failing lines, skipped (their trials rerun).
    corrupt_lines: int = 0
    #: Whether a valid header for the current code version was seen.
    valid: bool = False


class Journal:
    """Append-only JSONL write-ahead log of terminal trial outcomes.

    Appends are flushed and fsynced line by line, so a crash tears at most
    the final line; :meth:`load` skips any line that fails to parse or
    whose ``payload_sha256`` does not verify, and the affected trials are
    simply recomputed.  The first line is a header binding the journal to
    the code version; rows journaled by a different version are stale and
    ignored wholesale (results are a function of code version too).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = open(path, "a")
        if fresh:
            self._append(
                {
                    "kind": "header",
                    "schema": JOURNAL_SCHEMA,
                    "code_version": CODE_VERSION,
                }
            )

    def _append(self, record: dict) -> None:
        self._handle.write(canonical_json(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_done(self, spec: str, attempts: int, payload) -> None:
        self._append(
            {
                "kind": "trial",
                "spec": spec,
                "status": "done",
                "attempts": attempts,
                "payload_sha256": payload_sha256(payload),
                "payload": payload,
            }
        )

    def append_failure(self, failure: TrialFailure) -> None:
        self._append(
            {
                "kind": "trial",
                "spec": failure.spec,
                "status": failure.status,
                "attempts": failure.attempts,
                "failure": {"kind": failure.kind, "message": failure.message},
            }
        )

    def close(self) -> None:
        self._handle.close()

    @staticmethod
    def load(path: str) -> JournalState:
        """Replay a journal from disk, verifying every line."""
        state = JournalState()
        try:
            with open(path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return state
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                state.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                state.corrupt_lines += 1
                continue
            if record.get("kind") == "header":
                state.valid = (
                    record.get("schema") == JOURNAL_SCHEMA
                    and record.get("code_version") == CODE_VERSION
                )
                continue
            if not state.valid or record.get("kind") != "trial":
                state.corrupt_lines += 1
                continue
            spec = record.get("spec")
            status = record.get("status")
            if not isinstance(spec, str) or status not in (
                "done",
                "failed",
                "quarantined",
            ):
                state.corrupt_lines += 1
                continue
            if status == "done":
                try:
                    digest = payload_sha256(record["payload"])
                except (KeyError, TypeError, ValueError):
                    state.corrupt_lines += 1
                    continue
                if digest != record.get("payload_sha256"):
                    state.corrupt_lines += 1
                    continue
            state.records[spec] = record
        return state


def journal_status(path: str) -> dict:
    """Summarise a journal for ``repro campaign status``."""
    state = Journal.load(path)
    by_status: dict[str, int] = {"done": 0, "failed": 0, "quarantined": 0}
    for record in state.records.values():
        by_status[record["status"]] += 1
    return {
        "path": path,
        "trials": len(state.records),
        "corrupt_lines": state.corrupt_lines,
        **by_status,
    }


# -- worker pool plumbing -----------------------------------------------------


def _worker_main(conn, runner) -> None:
    """One pool worker: receive (index, config), ship back pickled outcomes.

    Workers ignore SIGINT/SIGTERM -- checkpointing is the driver's job; a
    worker only dies when killed outright (which the driver detects) or
    told to stop.  Results travel back over the worker's **own** duplex
    pipe, never a shared queue: a shared ``multiprocessing.Queue`` has a
    cross-process feeder lock, and SIGKILLing a worker whose feeder thread
    holds it deadlocks every other worker's ``put`` -- with per-worker
    pipes a killed worker tears only its own channel, which the driver's
    liveness sweep already treats as worker loss.  ``Pipe.send`` pickles
    in the calling thread, so an unpicklable payload is caught here and
    reported as a typed error instead of silently hanging the trial.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, config = message
        try:
            value = runner(config)
            status = "ok"
        except BaseException as error:  # noqa: BLE001 -- everything is data here
            value = error
            status = "error"
        try:
            conn.send((index, status, value))
        except (BrokenPipeError, OSError):
            return
        except Exception as error:
            try:
                conn.send(
                    (
                        index,
                        "error",
                        CampaignPayloadError(
                            f"trial {index} produced an unpicklable {status} "
                            f"payload: {error}"
                        ),
                    )
                )
            except (BrokenPipeError, OSError):
                return


class _Worker:
    """Driver-side handle: the process, its pipe, and its current trial."""

    __slots__ = ("process", "conn", "index", "started_at")

    def __init__(self, context, runner) -> None:
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, runner),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.index: int | None = None
        self.started_at = 0.0

    @property
    def idle(self) -> bool:
        return self.index is None

    def assign(self, index: int, config) -> bool:
        """Dispatch a trial; False when the worker is already dead."""
        try:
            self.conn.send((index, config))
        except (BrokenPipeError, OSError):
            return False
        self.index = index
        self.started_at = time.monotonic()
        return True

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.process.join(timeout=_SHUTDOWN_GRACE)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.process.close()

    def kill(self) -> None:
        self.process.kill()
        self.process.join()
        self.process.close()
        self.conn.close()


# -- the engine ---------------------------------------------------------------


class CampaignEngine:
    """Fault-tolerant executor for a batch of independent trials.

    One engine instance runs one batch (:meth:`run` is not reentrant).
    Construction wires the policy, the optional write-ahead journal, and
    the optional verified result cache; ``run`` executes the batch with
    per-trial retries/timeouts/quarantine and full accounting.
    """

    def __init__(
        self,
        runner=run_simulation,
        policy: CampaignPolicy | None = None,
        journal_path: str | None = None,
        cache: ResultCache | None = None,
        progress=None,
    ) -> None:
        self.runner = runner
        self.policy = policy if policy is not None else CampaignPolicy()
        self.journal_path = journal_path
        self.cache = cache
        self.progress = progress
        self.counters = CampaignCounters()
        self._persistent = journal_path is not None or cache is not None
        self._stop_requested = False
        self._journal: Journal | None = None

    # -- public control ------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the engine to checkpoint and stop (what SIGINT triggers)."""
        self._stop_requested = True

    # -- helpers -------------------------------------------------------------

    def _normalize(self, index: int, payload):
        """Canonical-JSON round-trip for persisted payloads.

        This is what makes resumed and fresh trials indistinguishable: a
        fresh payload passes through exactly the encode/decode a journal
        replay performs, so reports built from either are bit-identical.
        """
        if not self._persistent:
            return payload
        try:
            return json.loads(canonical_json(payload))
        except (TypeError, ValueError) as error:
            raise CampaignPayloadError(
                f"trial {index}: runner {_qualname(self.runner)} returned a "
                f"payload that is not canonical-JSON-serialisable ({error}); "
                "journaling/caching requires a digesting runner"
            ) from None

    def _record_done(
        self, index: int, spec: str | None, payload, attempts: int, *, how: str
    ) -> None:
        self.counters.done += 1
        if how == "cached":
            self.counters.cached += 1
        elif how == "replayed":
            self.counters.replayed += 1
        if spec is not None and how != "replayed" and self._journal is not None:
            self._journal.append_done(spec, attempts, payload)
        if spec is not None and how == "fresh" and self.cache is not None:
            self.cache.put(self.cache.key_for(spec), payload)
        if self.progress is not None:
            self.progress(index, "done", attempts)

    def _record_failure(self, failure: TrialFailure) -> None:
        if failure.status == "quarantined":
            self.counters.quarantined += 1
        else:
            self.counters.failed += 1
        if self._journal is not None:
            self._journal.append_failure(failure)
        if self.progress is not None:
            self.progress(failure.index, failure.status, failure.attempts)

    def _terminal_failure(
        self, index: int, spec: str | None, kind: str, attempts: int, message: str
    ) -> TrialFailure:
        status = "failed" if kind == "error" else "quarantined"
        return TrialFailure(
            index=index,
            spec=spec or "",
            kind=kind,
            status=status,
            attempts=attempts,
            message=message,
        )

    def _backoff_delay(self, attempts: int) -> float:
        return self.policy.backoff * (2.0 ** max(0, attempts - 1))

    # -- the run loop --------------------------------------------------------

    def run(self, configs: list[SimulationConfig]) -> CampaignOutcome:
        """Execute the batch; see the module docstring for the contract."""
        self.counters = CampaignCounters(submitted=len(configs))
        results: list = [None] * len(configs)
        failures: list[TrialFailure] = []
        specs: list[str | None] = [None] * len(configs)
        pending: list[int] = []

        replayed = (
            Journal.load(self.journal_path)
            if self.journal_path is not None and os.path.exists(self.journal_path)
            else JournalState()
        )
        if self.journal_path is not None:
            self._journal = Journal(self.journal_path)
        try:
            for index, config in enumerate(configs):
                if self._persistent:
                    specs[index] = trial_spec_hash(config, self.runner)
                record = replayed.records.get(specs[index]) if specs[index] else None
                if record is not None and record["status"] == "done":
                    results[index] = record["payload"]
                    self._record_done(
                        index,
                        specs[index],
                        record["payload"],
                        record.get("attempts", 1),
                        how="replayed",
                    )
                    continue
                if self.cache is not None:
                    payload = self.cache.get(self.cache.key_for(specs[index]))
                    if payload is not None:
                        results[index] = payload
                        self._record_done(
                            index, specs[index], payload, 1, how="cached"
                        )
                        continue
                pending.append(index)

            workers = self.policy.workers or _default_workers()
            previous_handlers = self._install_signal_handlers()
            try:
                if len(pending) <= 2 or workers == 1:
                    self._run_serial(configs, specs, pending, results, failures)
                elif pending:
                    self._run_pool(
                        configs, specs, pending, results, failures, workers
                    )
            finally:
                self._restore_signal_handlers(previous_handlers)
        finally:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

        failures.sort(key=lambda failure: failure.index)
        return CampaignOutcome(
            results=results, failures=failures, counters=self.counters
        )

    # -- signals -------------------------------------------------------------

    def _install_signal_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, self._on_signal)
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def _on_signal(self, signum, frame) -> None:
        if self._stop_requested:
            # A second signal means "now": abort without draining.
            raise KeyboardInterrupt
        self._stop_requested = True

    # -- serial execution ----------------------------------------------------

    def _run_serial(self, configs, specs, pending, results, failures) -> None:
        """In-process execution (small batches / one worker).

        No subprocesses means no worker-loss or timeout enforcement --
        trials run to completion -- but retries for raised trials (collect
        mode), journaling, caching, and checkpointed interrupts all behave
        identically to the pool path.
        """
        interrupted_at: int | None = None
        for position, index in enumerate(pending):
            if self._stop_requested:
                interrupted_at = position
                break
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload = self.runner(configs[index])
                except Exception as error:
                    if self.policy.on_error == "raise":
                        raise
                    if attempts <= self.policy.retries:
                        self.counters.retried += 1
                        continue
                    failure = self._terminal_failure(
                        index, specs[index], "error", attempts, repr(error)
                    )
                    failures.append(failure)
                    self._record_failure(failure)
                    break
                payload = self._normalize(index, payload)
                results[index] = payload
                self._record_done(index, specs[index], payload, attempts, how="fresh")
                break
        if interrupted_at is not None:
            raise CampaignInterrupted(
                len(pending) - interrupted_at, self.counters
            )
        if self._stop_requested:
            raise CampaignInterrupted(0, self.counters)

    # -- pooled execution ----------------------------------------------------

    def _run_pool(self, configs, specs, pending, results, failures, workers) -> None:
        """Process-pool execution with per-trial tracking.

        Each worker owns a pipe and runs one trial at a time, so worker
        death and per-trial deadlines map unambiguously onto trials.  The
        dispatch queue is ordered (index, then backoff eligibility); a
        retried trial re-enters it with exponential backoff.
        """
        import multiprocessing
        from multiprocessing.connection import wait as wait_ready

        context = multiprocessing.get_context()
        attempts: dict[int, int] = {index: 0 for index in pending}
        # (eligible_at, index): dispatch lowest index among the eligible.
        todo: list[tuple[float, int]] = [(0.0, index) for index in pending]
        unresolved = set(pending)
        pool: list[_Worker] = []
        raised: BaseException | None = None

        def resolve_done(index: int, payload) -> None:
            payload = self._normalize(index, payload)
            results[index] = payload
            unresolved.discard(index)
            self._record_done(
                index, specs[index], payload, attempts[index], how="fresh"
            )

        def resolve_attempt_failure(index: int, kind: str, message: str, error=None):
            """Retry or terminally fail one attempt; returns an exception
            to raise (raise-mode) or None."""
            if kind == "error" and self.policy.on_error == "raise":
                unresolved.discard(index)
                return error if error is not None else CampaignError(message)
            if attempts[index] <= self.policy.retries and not self._stop_requested:
                self.counters.retried += 1
                todo.append(
                    (
                        time.monotonic() + self._backoff_delay(attempts[index]),
                        index,
                    )
                )
                return None
            failure = self._terminal_failure(
                index, specs[index], kind, attempts[index], message
            )
            unresolved.discard(index)
            if self.policy.on_error == "raise":
                return CampaignTrialError(failure)
            failures.append(failure)
            self._record_failure(failure)
            return None

        def dispatch() -> None:
            if self._stop_requested or raised is not None:
                return
            now = time.monotonic()
            for worker in pool:
                if not worker.idle:
                    continue
                todo.sort()
                chosen = None
                for position, (eligible_at, index) in enumerate(todo):
                    if eligible_at <= now:
                        chosen = position
                        break
                if chosen is None:
                    return
                _eligible_at, index = todo.pop(chosen)
                attempts[index] += 1
                if not worker.assign(index, configs[index]):
                    # Dead before dispatch: requeue the trial un-charged,
                    # the liveness sweep below replaces the worker.
                    attempts[index] -= 1
                    todo.append((0.0, index))

        def in_flight() -> list[int]:
            return [worker.index for worker in pool if worker.index is not None]

        try:
            for _ in range(min(workers, len(pending))):
                pool.append(_Worker(context, self.runner))

            while unresolved and raised is None:
                if self._stop_requested and not in_flight():
                    break
                dispatch()
                busy = {worker.conn: worker for worker in pool if not worker.idle}
                got_result = False
                for conn in wait_ready(list(busy), timeout=_POLL):
                    worker = busy[conn]
                    try:
                        index, status, value = conn.recv()
                    except (EOFError, OSError):
                        # Torn pipe: the worker died; the liveness sweep
                        # below charges the trial and replaces the worker.
                        continue
                    got_result = True
                    if worker.index == index:
                        worker.index = None
                    if index in unresolved:
                        if status == "ok":
                            resolve_done(index, value)
                        elif isinstance(value, CampaignPayloadError):
                            raised = value
                            unresolved.discard(index)
                        else:
                            raised = resolve_attempt_failure(
                                index,
                                "error",
                                repr(value),
                                error=value,
                            )
                if got_result:
                    continue

                now = time.monotonic()
                for position, worker in enumerate(pool):
                    if (
                        worker.index is not None
                        and self.policy.trial_timeout is not None
                        and now - worker.started_at > self.policy.trial_timeout
                    ):
                        index = worker.index
                        worker.kill()
                        pool[position] = _Worker(context, self.runner)
                        raised = raised or resolve_attempt_failure(
                            index,
                            "timeout",
                            f"trial exceeded --trial-timeout "
                            f"{self.policy.trial_timeout:g}s",
                        )
                    elif not worker.process.is_alive():
                        index = worker.index
                        worker.kill()
                        pool[position] = _Worker(context, self.runner)
                        if index is not None:
                            raised = raised or resolve_attempt_failure(
                                index,
                                "worker-lost",
                                "worker process died mid-trial "
                                "(killed or crashed)",
                            )
        finally:
            for worker in pool:
                worker.stop()

        if raised is not None:
            raise raised
        if self._stop_requested and unresolved:
            raise CampaignInterrupted(len(unresolved), self.counters)
        if self._stop_requested:
            raise CampaignInterrupted(0, self.counters)


def _default_workers() -> int:
    from repro.experiments.common import max_workers

    return max_workers()


# -- the sweep layer (``repro campaign``) -------------------------------------


def sweep_trial(config: SimulationConfig) -> dict:
    """One sweep trial: digests plus job counters, refusals as data.

    Module-level and JSON-payload so campaigns can journal and cache it.
    A job failure (retry budget, data unavailable) is a campaign
    observation, not a crash; invariant violations still propagate.
    """
    import math

    from repro.obs.digest import digest_result

    try:
        result = run_simulation(config)
    except JobFailedError as error:
        result = error.result
    if result is None:
        return {"refused": True, "jobs": None, "digests": None}
    submitted = completed = failed = 0
    for job in result.jobs.values():
        submitted += 1
        if job.failed or math.isnan(job.finish_time):
            failed += 1
        else:
            completed += 1
    return {
        "refused": False,
        "jobs": {"submitted": submitted, "completed": completed, "failed": failed},
        "digests": {
            name: digest.to_dict() for name, digest in digest_result(result).items()
        },
    }


@dataclass(frozen=True)
class SweepSpec:
    """A declarative campaign: base config x schedulers x seeds."""

    base: SimulationConfig = field(default_factory=SimulationConfig)
    schedulers: tuple[str, ...] = ("LF", "BDF", "EDF")
    seeds: tuple[int, ...] = tuple(range(5))

    def __post_init__(self) -> None:
        if not self.schedulers:
            raise ValueError("campaign needs at least one scheduler")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")

    def grid(self) -> tuple[list[SimulationConfig], list[tuple[str, int]]]:
        """The trial grid plus its (scheduler, seed) keys, in canonical
        order (seed-major, then scheduler)."""
        configs: list[SimulationConfig] = []
        keys: list[tuple[str, int]] = []
        for seed in self.seeds:
            for scheduler in self.schedulers:
                configs.append(self.base.with_scheduler(scheduler).with_seed(seed))
                keys.append((scheduler, seed))
        return configs, keys

    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "base": config_to_dict(self.base),
            "schedulers": list(self.schedulers),
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        if payload.get("schema") != SPEC_SCHEMA:
            raise ValueError(
                f"campaign spec must carry schema {SPEC_SCHEMA!r}, "
                f"got {payload.get('schema')!r}"
            )
        seeds = payload.get("seeds", 5)
        if isinstance(seeds, int):
            seeds = list(range(seeds))
        return cls(
            base=config_from_dict(payload.get("base", {})),
            schedulers=tuple(payload.get("schedulers", ("LF", "BDF", "EDF"))),
            seeds=tuple(int(seed) for seed in seeds),
        )

    @classmethod
    def load(cls, path: str) -> "SweepSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def run_sweep(
    spec: SweepSpec,
    policy: CampaignPolicy | None = None,
    journal_path: str | None = None,
    cache: ResultCache | None = None,
    progress=None,
) -> tuple[dict, CampaignOutcome]:
    """Run (or resume) a sweep campaign; returns (report, outcome).

    The report (schema ``repro.campaign-report/v1``) is canonical: it
    contains only quantities that are a pure function of the spec and the
    terminal trial outcomes -- never execution accidents like cache hits
    or retry counts -- so an interrupted-then-resumed campaign emits
    byte-identical report JSON.
    """
    if policy is None:
        policy = CampaignPolicy(on_error="collect")
    configs, keys = spec.grid()
    engine = CampaignEngine(
        runner=sweep_trial,
        policy=policy,
        journal_path=journal_path,
        cache=cache,
        progress=progress,
    )
    outcome = engine.run(configs)

    from repro.obs.digest import LatencyDigest

    rows: dict[str, dict] = {}
    for scheduler in spec.schedulers:
        merged = {
            "degraded_read": LatencyDigest(),
            "sojourn": LatencyDigest(),
            "makespan": LatencyDigest(),
        }
        trials = done = refused = 0
        jobs = {"submitted": 0, "completed": 0, "failed": 0}
        # Merge in grid order -- the canonical order that keeps serial,
        # parallel, and resumed campaigns bit-identical.
        for (key_scheduler, _seed), payload in zip(keys, outcome.results):
            if key_scheduler != scheduler:
                continue
            trials += 1
            if payload is None:
                continue
            done += 1
            if payload["refused"]:
                refused += 1
                continue
            for name in jobs:
                jobs[name] += payload["jobs"][name]
            for name, digest in merged.items():
                digest.merge(LatencyDigest.from_dict(payload["digests"][name]))
        rows[scheduler] = {
            "trials": trials,
            "done": done,
            "refused": refused,
            "jobs": jobs,
            "degraded_read_seconds": merged["degraded_read"].percentiles(),
            "makespan_seconds": merged["makespan"].percentiles(),
            "telemetry": {
                name: digest.to_dict() for name, digest in merged.items()
            },
        }

    report = {
        "schema": REPORT_SCHEMA,
        "campaign": spec.to_dict(),
        "accounting": {
            "submitted": outcome.counters.submitted,
            "done": outcome.counters.done,
            "failed": outcome.counters.failed,
            "quarantined": outcome.counters.quarantined,
        },
        "failures": [failure.to_dict() for failure in outcome.failures],
        "schedulers": rows,
    }
    return report, outcome


def report_to_json(report: dict) -> str:
    """Canonical JSON for a sweep report (bit-identical across runs)."""
    return json.dumps(report, sort_keys=True, indent=2, allow_nan=False) + "\n"


def render_sweep_report(report: dict) -> str:
    """Human-readable sweep summary (the CLI's default output)."""
    accounting = report["accounting"]
    lines = [
        "== campaign ==",
        f"trials: {accounting['submitted']} submitted, {accounting['done']} done,"
        f" {accounting['failed']} failed, {accounting['quarantined']} quarantined",
    ]
    for scheduler, row in report["schedulers"].items():
        latency = row["degraded_read_seconds"]
        if latency["count"]:
            tail = (
                f"degraded reads n={latency['count']}"
                f" p50={latency['p50']:.2f}s p95={latency['p95']:.2f}s"
                f" p99={latency['p99']:.2f}s"
            )
        else:
            tail = "degraded reads: none observed"
        makespan = row["makespan_seconds"]
        head = (
            f"makespan p50={makespan['p50']:.1f}s" if makespan["count"] else "no data"
        )
        lines.append(
            f"  {scheduler:>3}: {row['done']}/{row['trials']} trial(s); {head}; {tail}"
        )
    for failure in report["failures"]:
        lines.append(
            f"  FAILED trial {failure['index']} [{failure['kind']}] "
            f"after {failure['attempts']} attempt(s): {failure['message']}"
        )
    return "\n".join(lines)

