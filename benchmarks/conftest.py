"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper.  By default
they run abbreviated sample counts (3 seeds / 2 testbed repetitions) so the
whole suite finishes in minutes on a laptop; set ``REPRO_SEEDS=30`` and
``REPRO_TESTBED_RUNS=5`` for the paper's full methodology.

Every session also writes ``BENCH_obs.json`` next to this file: wall-clock
seconds per benchmark, grouped by figure/table module, so the suite's
performance trajectory accumulates across commits.  Override the location
with ``REPRO_BENCH_OUT`` (empty string disables the write).
"""

from __future__ import annotations

import json
import os
import time

os.environ.setdefault("REPRO_SEEDS", "3")
os.environ.setdefault("REPRO_TESTBED_RUNS", "2")

#: Wall-clock call durations per test node id, filled as the session runs.
_timings: dict[str, float] = {}


def one_shot(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def pytest_runtest_logreport(report) -> None:
    if report.when == "call" and report.passed:
        _timings[report.nodeid] = report.duration


def _figure_of(nodeid: str) -> str:
    """Group key: ``benchmarks/test_fig7_simulation.py::x`` -> ``fig7_simulation``."""
    module = nodeid.split("::")[0].rsplit("/", 1)[-1]
    return module.removeprefix("test_").removesuffix(".py")


def pytest_sessionfinish(session, exitstatus) -> None:
    out = os.environ.get(
        "REPRO_BENCH_OUT", os.path.join(os.path.dirname(__file__), "BENCH_obs.json")
    )
    if not out or not _timings:
        return
    figures: dict[str, dict] = {}
    for nodeid, seconds in sorted(_timings.items()):
        entry = figures.setdefault(_figure_of(nodeid), {"total_s": 0.0, "tests": {}})
        entry["tests"][nodeid] = round(seconds, 3)
        entry["total_s"] = round(entry["total_s"] + seconds, 3)
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "seeds": os.environ.get("REPRO_SEEDS"),
        "testbed_runs": os.environ.get("REPRO_TESTBED_RUNS"),
        "figures": figures,
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
