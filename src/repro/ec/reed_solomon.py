"""Systematic Reed-Solomon coding over GF(2^8).

An ``RS(n, k)`` code turns ``k`` *native* blocks into ``n - k`` *parity*
blocks such that any ``k`` of the ``n`` stripe blocks suffice to rebuild the
originals.  This is exactly the contract HDFS-RAID relies on for degraded
reads, and the contract the paper's scheduling analysis assumes.

The implementation is matrix-based: a systematic ``n x k`` generator matrix
(top ``k`` rows = identity) encodes, and decoding inverts the ``k x k``
sub-matrix formed by the rows of whichever ``k`` blocks survived.

Decode plans are cached per coder instance: repairing or degraded-reading
every stripe of a failed node hits the same surviving-index pattern over and
over, so the sub-matrix inversion (and the compiled
:class:`~repro.ec.matrix.BatchedMatvec` with its packed gather tables) is
paid once per pattern, not once per stripe.  Single-block reconstruction
(:meth:`ReedSolomon.reconstruct_block`) uses a cached one-row plan — one
``k``-term matvec — instead of a full decode followed by a re-encode.  The
caches never need invalidation because the generator matrix is immutable
after construction (:attr:`ReedSolomon.generator_matrix` returns a copy).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.ec import matrix as gfm

#: Maximum cached decode plans (and, separately, single-row plans) per coder.
#: A node failure exercises at most ``n`` distinct surviving patterns per
#: lost position, so 128 covers realistic repair sweeps with room to spare.
PLAN_CACHE_SIZE = 128


def _as_byte_array(block: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Coerce a block payload to a 1-D uint8 numpy array without copying numpy input."""
    if isinstance(block, np.ndarray):
        if block.dtype != np.uint8 or block.ndim != 1:
            raise ValueError("numpy blocks must be 1-D uint8 arrays")
        return block
    return np.frombuffer(bytes(block), dtype=np.uint8)


@dataclass
class _DecodePlan:
    """A cached decode: the inverted sub-matrix plus its compiled matvec."""

    indices: tuple[int, ...]
    decode_matrix: np.ndarray
    matvec: gfm.BatchedMatvec


class ReedSolomon:
    """A systematic RS(n, k) encoder/decoder.

    Parameters
    ----------
    n:
        Total number of blocks per stripe (native + parity).
    k:
        Number of native blocks per stripe.
    """

    def __init__(self, n: int, k: int) -> None:
        if not 0 < k <= n:
            raise ValueError(f"require 0 < k <= n, got n={n} k={k}")
        self.n = n
        self.k = k
        self._generator = self._build_generator()
        self._encoder: gfm.BatchedMatvec | None = None
        self._plans: OrderedDict[tuple[int, ...], _DecodePlan] = OrderedDict()
        self._row_plans: OrderedDict[
            tuple[int, tuple[int, ...]], gfm.BatchedMatvec
        ] = OrderedDict()
        self._plan_hits = 0
        self._plan_misses = 0
        self._row_hits = 0
        self._row_misses = 0

    def _build_generator(self) -> np.ndarray:
        """Construct the generator matrix; subclasses override the construction."""
        return gfm.systematic_encoding_matrix(self.n, self.k)

    @property
    def parity_count(self) -> int:
        """Number of parity blocks per stripe (``n - k``)."""
        return self.n - self.k

    @property
    def generator_matrix(self) -> np.ndarray:
        """A copy of the ``n x k`` systematic generator matrix."""
        return self._generator.copy()

    def plan_cache_info(self) -> dict[str, int]:
        """Decode-plan cache statistics (sizes and hit/miss counters)."""
        return {
            "plans": len(self._plans),
            "plan_hits": self._plan_hits,
            "plan_misses": self._plan_misses,
            "row_plans": len(self._row_plans),
            "row_hits": self._row_hits,
            "row_misses": self._row_misses,
            "maxsize": PLAN_CACHE_SIZE,
        }

    def _encoder_plan(self) -> gfm.BatchedMatvec:
        """The compiled parity-row matvec, built once per coder."""
        encoder = self._encoder
        if encoder is None:
            encoder = self._encoder = gfm.BatchedMatvec(self._generator[self.k :])
        return encoder

    def _decode_plan(self, indices: tuple[int, ...]) -> _DecodePlan:
        """Fetch (or invert and cache) the decode plan for a surviving pattern."""
        plan = self._plans.get(indices)
        if plan is not None:
            self._plans.move_to_end(indices)
            self._plan_hits += 1
            return plan
        self._plan_misses += 1
        sub_matrix = self._generator[list(indices), :]
        decode_matrix = gfm.invert(sub_matrix)
        plan = _DecodePlan(indices, decode_matrix, gfm.BatchedMatvec(decode_matrix))
        self._plans[indices] = plan
        if len(self._plans) > PLAN_CACHE_SIZE:
            self._plans.popitem(last=False)
        return plan

    def _row_plan(
        self, stripe_index: int, indices: tuple[int, ...]
    ) -> gfm.BatchedMatvec:
        """Fetch (or derive and cache) the one-row reconstruction plan.

        The row that rebuilds stripe block ``i`` from survivors ``indices``
        is row ``i`` of the decode matrix when ``i < k`` (a native), and
        ``generator[i] @ decode_matrix`` when ``i`` is parity — the re-encode
        folded into the plan so reconstruction is a single k-term matvec.
        """
        key = (stripe_index, indices)
        plan = self._row_plans.get(key)
        if plan is not None:
            self._row_plans.move_to_end(key)
            self._row_hits += 1
            return plan
        self._row_misses += 1
        decode_matrix = self._decode_plan(indices).decode_matrix
        if stripe_index < self.k:
            row = decode_matrix[stripe_index : stripe_index + 1]
        else:
            row = gfm.matmul(
                self._generator[stripe_index : stripe_index + 1], decode_matrix
            )
        plan = gfm.BatchedMatvec(row)
        self._row_plans[key] = plan
        if len(self._row_plans) > PLAN_CACHE_SIZE:
            self._row_plans.popitem(last=False)
        return plan

    def encode(self, native_blocks: Sequence[bytes | np.ndarray]) -> list[bytes]:
        """Encode ``k`` equal-length native blocks into ``n - k`` parity blocks.

        Returns the parity blocks only; a full stripe is
        ``list(native_blocks) + parity``.
        """
        if len(native_blocks) != self.k:
            raise ValueError(f"expected {self.k} native blocks, got {len(native_blocks)}")
        arrays = [_as_byte_array(block) for block in native_blocks]
        lengths = {len(array) for array in arrays}
        if len(lengths) > 1:
            raise ValueError(f"native blocks have unequal lengths: {sorted(lengths)}")
        parity_arrays = self._encoder_plan().apply(arrays)
        return [array.tobytes() for array in parity_arrays]

    def encode_stripes(
        self, stripes: Sequence[Sequence[bytes | np.ndarray]]
    ) -> list[list[bytes]]:
        """Encode many stripes through one batched kernel pass.

        Each stripe holds ``k`` equal-length native blocks; lengths may vary
        *across* stripes.  Blocks are stacked column-wise into one long
        array per generator column (short stripes zero-padded to the longest
        stripe), a single parity matvec runs over the stack, and each
        stripe's parity is sliced back out.  Zero-padding natives yields a
        zero parity tail (the code is GF-linear), so the truncated slices
        are byte-identical to encoding each stripe on its own — property
        tests in ``tests/property/test_ec_kernel_equivalence.py`` hold this.

        Returns one ``n - k``-entry parity list per input stripe.
        """
        if not stripes:
            return []
        stripe_arrays: list[list[np.ndarray]] = []
        lengths: list[int] = []
        for stripe in stripes:
            if len(stripe) != self.k:
                raise ValueError(
                    f"expected {self.k} native blocks per stripe, got {len(stripe)}"
                )
            arrays = [_as_byte_array(block) for block in stripe]
            stripe_lengths = {len(array) for array in arrays}
            if len(stripe_lengths) > 1:
                raise ValueError(
                    f"native blocks have unequal lengths: {sorted(stripe_lengths)}"
                )
            stripe_arrays.append(arrays)
            lengths.append(len(arrays[0]))
        coding_length = max(lengths)
        stacked = np.zeros((self.k, len(stripes) * coding_length), dtype=np.uint8)
        for position, arrays in enumerate(stripe_arrays):
            base = position * coding_length
            for column, array in enumerate(arrays):
                stacked[column, base : base + lengths[position]] = array
        parity_stack = self._encoder_plan().apply(list(stacked))
        result: list[list[bytes]] = []
        for position, length in enumerate(lengths):
            base = position * coding_length
            result.append(
                [parity[base : base + length].tobytes() for parity in parity_stack]
            )
        return result

    def _decode_inputs(
        self, available: Mapping[int, bytes | np.ndarray]
    ) -> tuple[tuple[int, ...], list[np.ndarray]]:
        """Validate survivors and return the chosen indices plus their payloads."""
        if len(available) < self.k:
            raise ValueError(
                f"need at least k={self.k} blocks to decode, got {len(available)}"
            )
        indices = tuple(sorted(available)[: self.k])
        for index in indices:
            if not 0 <= index < self.n:
                raise ValueError(f"stripe index {index} out of range [0, {self.n})")
        arrays = [_as_byte_array(available[index]) for index in indices]
        lengths = {len(array) for array in arrays}
        if len(lengths) > 1:
            raise ValueError(f"blocks have unequal lengths: {sorted(lengths)}")
        return indices, arrays

    def decode_arrays(
        self, available: Mapping[int, bytes | np.ndarray]
    ) -> list[np.ndarray]:
        """:meth:`decode` without the final ``tobytes`` copies.

        Returns the ``k`` native blocks as fresh uint8 arrays; internal
        callers that keep working in numpy (the batched codec paths) use
        this to skip the per-block bytes round-trip.
        """
        indices, arrays = self._decode_inputs(available)
        return self._decode_plan(indices).matvec.apply(arrays)

    def decode(self, available: Mapping[int, bytes | np.ndarray]) -> list[bytes]:
        """Reconstruct all ``k`` native blocks from any ``k`` stripe blocks.

        Parameters
        ----------
        available:
            Maps stripe index (``0 .. n-1``; indices below ``k`` are native,
            the rest parity) to the surviving block payload.  At least ``k``
            entries are required; exactly the first ``k`` sorted by index are
            used, matching the paper's "read from any k surviving nodes".
        """
        return [array.tobytes() for array in self.decode_arrays(available)]

    def reconstruct_block(
        self, stripe_index: int, available: Mapping[int, bytes | np.ndarray]
    ) -> bytes:
        """Rebuild one block (native or parity) of the stripe.

        This is the degraded-read primitive: a degraded task downloads ``k``
        surviving blocks and reconstructs exactly the lost one — a single
        cached k-term matvec, not a full decode plus re-encode.
        """
        if not 0 <= stripe_index < self.n:
            raise ValueError(f"stripe index {stripe_index} out of range [0, {self.n})")
        if stripe_index in available:
            return _as_byte_array(available[stripe_index]).tobytes()
        indices, arrays = self._decode_inputs(available)
        plan = self._row_plan(stripe_index, indices)
        return plan.apply(arrays)[0].tobytes()
