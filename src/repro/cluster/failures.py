"""Failure injection: which nodes are dead when the job runs.

The paper evaluates a single-node failure (the common case, Sections IV and
VI), double-node failures and a whole-rack failure (Figure 7(d)).  A
:class:`FailureInjector` turns a :class:`FailurePattern` plus a random
stream into the concrete set of failed node ids for one trial.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.sim.rng import RngStreams


class FailurePattern(enum.Enum):
    """The failure scenarios evaluated in the paper."""

    NONE = "none"
    SINGLE_NODE = "single-node"
    DOUBLE_NODE = "double-node"
    RACK = "rack"


@dataclass(frozen=True)
class FailureInjector:
    """Chooses failed nodes for a trial.

    Parameters
    ----------
    pattern:
        Which failure scenario to inject.
    """

    pattern: FailurePattern

    def choose_failed_nodes(
        self,
        topology: ClusterTopology,
        rng: RngStreams,
        eligible: list[int] | None = None,
    ) -> frozenset[int]:
        """Return the node ids that are down for this trial.

        ``eligible`` restricts the candidate set (the extreme-case experiment
        fails one of the *normal* nodes only); it is ignored for rack
        failures, which take out a whole random rack.
        """
        candidates = sorted(eligible) if eligible is not None else sorted(topology.node_ids())
        if self.pattern is FailurePattern.NONE:
            return frozenset()
        if self.pattern is FailurePattern.SINGLE_NODE:
            if not candidates:
                raise ValueError("no eligible nodes to fail")
            return frozenset(rng.sample("failures", candidates, 1))
        if self.pattern is FailurePattern.DOUBLE_NODE:
            if len(candidates) < 2:
                raise ValueError("need at least two eligible nodes for a double failure")
            return frozenset(rng.sample("failures", candidates, 2))
        if self.pattern is FailurePattern.RACK:
            rack_ids = [rack.rack_id for rack in topology.racks]
            rack_id = rng.choice("failures", rack_ids)
            return frozenset(topology.nodes_in_rack(rack_id))
        raise AssertionError(f"unhandled pattern {self.pattern}")

    def to_schedule(
        self,
        topology: ClusterTopology,
        rng: RngStreams,
        eligible: list[int] | None = None,
        at: float = 0.0,
    ):
        """Express this injector's choice as a :class:`FailureSchedule`.

        The paper's at-start patterns become the degenerate ``at=0`` case of
        the scripted-schedule machinery (:mod:`repro.faults.schedule`); pass
        ``at > 0`` to turn the same choice into a mid-run crash that the
        master must detect from heartbeat expiry.  Draws from the same
        ``"failures"`` stream as :meth:`choose_failed_nodes`, so both paths
        pick identical victims for a given seed.
        """
        from repro.faults.schedule import FailEvent, FailureSchedule

        victims = self.choose_failed_nodes(topology, rng, eligible)
        return FailureSchedule(
            tuple(FailEvent(at=at, node=victim) for victim in sorted(victims))
        )

    def max_lost_per_stripe(self, topology: ClusterTopology) -> int:
        """Upper bound on blocks a stripe can lose under this pattern.

        Used to sanity-check that the code's fault tolerance (``n - k``) and
        the placement policy can survive the injected failure.
        """
        if self.pattern is FailurePattern.NONE:
            return 0
        if self.pattern is FailurePattern.SINGLE_NODE:
            return 1
        if self.pattern is FailurePattern.DOUBLE_NODE:
            return 2
        if self.pattern is FailurePattern.RACK:
            return max(len(rack) for rack in topology.racks)
        raise AssertionError(f"unhandled pattern {self.pattern}")
