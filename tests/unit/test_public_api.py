"""Public-API surface tests: the imports a downstream user relies on."""

from __future__ import annotations

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_lazy_run_simulation(self):
        import repro

        assert callable(repro.run_simulation)

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            _ = repro.does_not_exist

    def test_config_types_exported(self):
        from repro import CodeParams, FailurePattern, JobConfig, SimulationConfig

        assert SimulationConfig().code == CodeParams(20, 15)
        assert JobConfig().num_blocks == 1440
        assert FailurePattern.SINGLE_NODE.value == "single-node"


class TestSubpackageSurfaces:
    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro.ec", ["CodeParams", "ErasureCodec", "ReedSolomon", "StripeLayout"]),
            ("repro.cluster", ["ClusterTopology", "NodeTree", "NetworkSpec", "FailureInjector"]),
            (
                "repro.storage",
                ["BlockMap", "HdfsRaidCluster", "RepairPlanner", "make_placement_policy"],
            ),
            ("repro.sim", ["Simulator", "Timeout", "Semaphore", "FluidNetwork", "RngStreams"]),
            ("repro.core", ["LocalityFirstScheduler", "BasicDegradedFirstScheduler",
                            "EnhancedDegradedFirstScheduler", "make_scheduler"]),
            ("repro.analysis", ["AnalysisParams", "AnalyticalModel", "sweep_code"]),
            ("repro.testbed", ["TestbedCluster", "TestbedConfig", "WordCountJob",
                               "HdfsRaidFilesystem", "generate_corpus"]),
            ("repro.experiments", ["get_experiment", "list_experiments", "ExperimentTable"]),
            ("repro.obs", ["ObservabilityCollector", "EventBus", "MetricsRegistry",
                           "TimeWeightedSeries", "chrome_trace", "events_jsonl"]),
        ],
    )
    def test_documented_names_importable(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_all_lists_are_accurate(self):
        for module_name in (
            "repro.ec",
            "repro.cluster",
            "repro.storage",
            "repro.sim",
            "repro.core",
            "repro.analysis",
            "repro.testbed",
            "repro.experiments",
            "repro.obs",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"
