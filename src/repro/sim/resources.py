"""Simulation resources: slots, fluid fair-shared links, exclusive links.

Three resource kinds cover everything the MapReduce simulator needs:

* :class:`Semaphore` -- counting semaphore with a FIFO queue; models map and
  reduce slots.
* :class:`FluidNetwork` -- links whose active flows share bandwidth max-min
  fairly, recomputed whenever a flow starts or finishes.  This captures the
  paper's observation that two degraded reads entering one rack halve each
  other's throughput ("doubles the download time, from 10s to 20s").
  The progressive-filling recompute runs over a persistent link->flows
  index (only occupied links are visited), flows are kept in a
  done-event->flow map so ``cancel`` is O(1), and the next completion is
  tracked with a lazily invalidated ETA heap -- see DESIGN.md section 10.
  The original all-pairs implementation is retained as
  :meth:`FluidNetwork._recompute_rates_reference`, the oracle for the
  property suite's allocation-equivalence tests.
* :class:`ExclusivePathNetwork` -- the literal CSIM "hold the communication
  link for a duration" semantics: a transfer occupies every link on its path
  exclusively; contending transfers queue.  Provided for the network-model
  ablation.

Observability (see :mod:`repro.obs`): each resource accepts an optional
*observer* -- ``None`` by default, so the off path costs one ``is not None``
check.  Observers are called synchronously (never via the event heap) with
slot-occupancy changes, flow starts/ends, and rate reallocations, so an
instrumented run's simulation trajectory is identical to an uninstrumented
one.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.sim.engine import Event, Simulator


class Semaphore:
    """Counting semaphore with FIFO granting.

    ``acquire`` returns an :class:`Event` that fires when a unit is granted;
    ``release`` returns one unit and wakes the queue head (``deque``-backed,
    so granting is O(1) however deep the queue gets).
    """

    __slots__ = ("_sim", "capacity", "available", "name", "_queue", "observer")

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.available = capacity
        self.name = name
        self._queue: deque[Event] = deque()
        #: Optional slot observer: ``slot_changed(now, name, in_use, capacity,
        #: queued)`` called synchronously on every occupancy/queue change.
        self.observer = None

    def _notify(self) -> None:
        self.observer.slot_changed(
            self._sim.now,
            self.name,
            self.capacity - self.available,
            self.capacity,
            len(self._queue),
        )

    def acquire(self) -> Event:
        """Request one unit; the returned event fires when granted."""
        grant = self._sim.event(name=f"sem:{self.name}")
        if self.available > 0:
            self.available -= 1
            grant.succeed()
        else:
            self._queue.append(grant)
        if self.observer is not None:
            self._notify()
        return grant

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self._queue:
            self._queue.popleft().succeed()
        else:
            if self.available >= self.capacity:
                raise ValueError(f"semaphore {self.name!r} released above capacity")
            self.available += 1
        if self.observer is not None:
            self._notify()

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self.available > 0:
            self.available -= 1
            if self.observer is not None:
                self._notify()
            return True
        return False

    @property
    def queue_length(self) -> int:
        """Number of blocked acquirers."""
        return len(self._queue)


@dataclass(eq=False, slots=True)
class _Flow:
    """One active fluid transfer.

    ``eq=False`` keeps identity hashing so flows can key the link index.
    ``eta_epoch`` versions the flow's (rate, remaining) basis: an ETA-heap
    entry is valid only while the epoch it captured is still current.
    """

    links: tuple[str, ...]
    remaining: float
    done: Event
    size: float = 0.0
    rate: float = 0.0
    started_at: float = 0.0
    eta_epoch: int = 0

    @property
    def finished(self) -> bool:
        """Whether the flow is complete, up to float residue.

        The tolerance is relative to the flow size: rate*elapsed debits can
        leave residues of a few bytes on 10^8-byte flows, and an absolute
        epsilon would livelock the completion scheduler.
        """
        return self.remaining <= max(1e-6 * self.size, 1e-9)


class FluidNetwork:
    """Max-min fair fluid bandwidth sharing across named links.

    Each flow crosses one or more links; at any instant the flow rates are
    the max-min fair allocation given each link's capacity.  Rates are
    recomputed whenever a flow starts, finishes or is cancelled, and the
    next completion is scheduled from the updated rates.

    Hot-path structure (behaviour-identical to the original all-pairs
    implementation, enforced by golden and property tests):

    * ``_flows`` maps each flow's completion event to the flow, so
      :meth:`cancel` and membership checks are O(1);
    * ``_link_flows`` is a persistent link -> ordered-flow-set index holding
      only *occupied* links, so progressive filling visits occupied links
      with O(1) per-link flow counts instead of rescanning every link
      against every flow;
    * ``_eta_heap`` tracks candidate completion times ``(abs_eta, seq, flow,
      epoch)``; entries are lazily invalidated by epoch bumps when a flow's
      rate changes or the flow ends, and the whole heap is rebuilt only when
      virtual time advanced (every ``remaining`` then shifted).  Within one
      instant -- the common burst case -- unchanged flows keep their
      entries.
    """

    __slots__ = (
        "_sim",
        "_capacities",
        "_link_order",
        "_flows",
        "_link_flows",
        "_eta_heap",
        "_eta_seq",
        "_eta_dirty",
        "_last_update",
        "_pending_completion",
        "observer",
    )

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._capacities: dict[str, float] = {}
        #: Link -> registration index; progressive filling must consider
        #: links in registration order so bottleneck ties break exactly as
        #: the reference implementation's dict scan did.
        self._link_order: dict[str, int] = {}
        #: Completion event -> flow, in start order.
        self._flows: dict[Event, _Flow] = {}
        #: Occupied link -> insertion-ordered set (dict) of crossing flows.
        self._link_flows: dict[str, dict[_Flow, None]] = {}
        self._eta_heap: list[tuple[float, int, _Flow, int]] = []
        self._eta_seq = 0
        self._eta_dirty = False
        self._last_update = 0.0
        self._pending_completion: dict | None = None
        #: Optional network observer: ``flow_started`` / ``flow_finished`` /
        #: ``rates_updated`` hooks, called synchronously (never via the heap).
        self.observer = None

    def add_link(self, name: str, capacity: float) -> None:
        """Register a link; capacity is in bytes (or bits) per second."""
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive, got {capacity}")
        if name in self._capacities:
            raise ValueError(f"duplicate link {name!r}")
        self._link_order[name] = len(self._capacities)
        self._capacities[name] = capacity

    def has_link(self, name: str) -> bool:
        """Whether a link with this name exists."""
        return name in self._capacities

    @property
    def capacities(self) -> dict[str, float]:
        """A copy of the registered link capacities."""
        return dict(self._capacities)

    def transfer(self, links: list[str], size: float) -> Event:
        """Start a flow of ``size`` over ``links``; event fires on completion.

        An empty ``links`` list means an uncontended transfer that finishes
        instantly (used for node-local movement).
        """
        done = self._sim.event(name="flow")
        for link in links:
            if link not in self._capacities:
                raise KeyError(f"unknown link {link!r}")
        if size <= 0 or not links:
            done.succeed()
            return done
        self._advance()
        flow = _Flow(links=tuple(links), remaining=float(size), done=done,
                     size=float(size), started_at=self._sim.now)
        self._flows[done] = flow
        link_flows = self._link_flows
        for link in flow.links:
            bucket = link_flows.get(link)
            if bucket is None:
                link_flows[link] = {flow: None}
            else:
                bucket[flow] = None
        if self.observer is not None:
            self.observer.flow_started(self._sim.now, flow.links, flow.size)
        self._reschedule()
        return flow.done

    def active_flow_count(self, link: str | None = None) -> int:
        """Number of active flows, optionally restricted to one link."""
        if link is None:
            return len(self._flows)
        bucket = self._link_flows.get(link)
        return 0 if bucket is None else len(bucket)

    def cancel(self, done: Event) -> bool:
        """Abort the in-flight flow whose completion event is ``done``.

        Returns True if the flow was found and removed (its event will then
        never fire); False if it already completed or was never started.
        Used when a transfer's source node dies mid-flight: the connection
        breaks immediately and the bandwidth is redistributed to survivors.
        """
        flow = self._flows.get(done)
        if flow is None:
            return False
        self._advance()
        self._remove_flow(flow)
        if self.observer is not None and hasattr(self.observer, "flow_cancelled"):
            self.observer.flow_cancelled(
                self._sim.now,
                flow.links,
                flow.size,
                flow.size - flow.remaining,
            )
        self._reschedule()
        return True

    # -- internals ----------------------------------------------------------

    def _remove_flow(self, flow: _Flow) -> None:
        """Drop a flow from the event map and link index; void its ETAs."""
        del self._flows[flow.done]
        link_flows = self._link_flows
        for link in flow.links:
            bucket = link_flows[link]
            del bucket[flow]
            if not bucket:
                del link_flows[link]
        flow.eta_epoch += 1

    def _advance(self) -> None:
        """Debit progress accrued since the last rate change."""
        elapsed = self._sim.now - self._last_update
        if elapsed > 0:
            for flow in self._flows.values():
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
            # Every remaining value moved, so every cached ETA basis is void.
            self._eta_dirty = True
        self._last_update = self._sim.now

    def _recompute_rates(self) -> list[_Flow]:
        """Progressive-filling max-min fair allocation over the link index.

        Visits only occupied links, with per-link flow counts maintained
        incrementally per round.  Returns the flows whose rate changed.
        Bit-identical to :meth:`_recompute_rates_reference`: links are
        considered in registration order so bottleneck ties break the same
        way, and within a round every frozen flow debits the same share, so
        the residual arithmetic is order-independent.
        """
        changed: list[_Flow] = []
        link_flows = self._link_flows
        if not link_flows:
            return changed
        occupied = sorted(link_flows, key=self._link_order.__getitem__)
        capacities = self._capacities
        residual = {link: capacities[link] for link in occupied}
        unfrozen_count = {link: len(link_flows[link]) for link in occupied}
        frozen: set[_Flow] = set()
        remaining_flows = len(self._flows)
        while remaining_flows:
            best_share = None
            bottleneck = None
            for link in occupied:
                count = unfrozen_count[link]
                if count == 0 or link not in residual:
                    continue
                share = residual[link] / count
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = link
            if best_share is None:
                break
            for flow in link_flows[bottleneck]:
                if flow in frozen:
                    continue
                frozen.add(flow)
                remaining_flows -= 1
                if flow.rate != best_share:
                    flow.rate = best_share
                    changed.append(flow)
                for link in flow.links:
                    residual[link] = max(0.0, residual[link] - best_share)
                    unfrozen_count[link] -= 1
            del residual[bottleneck]
        if remaining_flows:
            # Unreachable with positive capacities (every unfrozen flow
            # keeps a live link); mirrors the reference's rate zeroing.
            for flow in self._flows.values():
                if flow not in frozen and flow.rate != 0.0:
                    flow.rate = 0.0
                    changed.append(flow)
        return changed

    def _recompute_rates_reference(self) -> dict[Event, float]:
        """The original all-pairs progressive-filling implementation.

        Scans every registered link against every unfrozen flow per round.
        Kept (non-mutating: rates are returned keyed by completion event,
        ``flow.rate`` is untouched) as the oracle for the property tests
        asserting the indexed implementation allocates identically.
        """
        flows = list(self._flows.values())
        rates = {flow.done: 0.0 for flow in flows}
        unfrozen = flows
        residual = dict(self._capacities)
        while unfrozen:
            # Bottleneck link: smallest fair share among links carrying flows.
            best_share = None
            for link, capacity in residual.items():
                count = sum(1 for flow in unfrozen if link in flow.links)
                if count == 0:
                    continue
                share = capacity / count
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = link
            if best_share is None:
                break
            frozen = [flow for flow in unfrozen if bottleneck in flow.links]
            for flow in frozen:
                rates[flow.done] = best_share
                for link in flow.links:
                    residual[link] = max(0.0, residual[link] - best_share)
            del residual[bottleneck]
            unfrozen = [flow for flow in unfrozen if bottleneck not in flow.links]
        return rates

    def _refresh_eta_heap(self, changed: list[_Flow]) -> None:
        """Bring the ETA heap in line with the rates just computed.

        If virtual time advanced since the heap's entries were pushed, every
        basis is stale: rebuild from scratch (one heapify, no epoch churn).
        Otherwise -- a same-instant burst of starts/cancels -- only flows
        whose rate changed need fresh entries; everyone else's cached
        absolute ETA is still exact.
        """
        now = self._sim.now
        seq = self._eta_seq
        if self._eta_dirty:
            self._eta_dirty = False
            entries = []
            for flow in self._flows.values():
                if flow.rate > 0:
                    seq += 1
                    entries.append(
                        (now + flow.remaining / flow.rate, seq, flow, flow.eta_epoch)
                    )
            heapq.heapify(entries)
            self._eta_heap = entries
        else:
            heap = self._eta_heap
            for flow in changed:
                flow.eta_epoch += 1
                if flow.rate > 0:
                    seq += 1
                    heapq.heappush(
                        heap,
                        (now + flow.remaining / flow.rate, seq, flow, flow.eta_epoch),
                    )
        self._eta_seq = seq

    def _reschedule(self) -> None:
        """Recompute rates and arm the next completion callback."""
        changed = self._recompute_rates()
        if self.observer is not None:
            link_rates: dict[str, float] = {}
            for flow in self._flows.values():
                for link in flow.links:
                    link_rates[link] = link_rates.get(link, 0.0) + flow.rate
            self.observer.rates_updated(self._sim.now, link_rates)
        if self._pending_completion is not None:
            self._pending_completion["cancelled"] = True
            self._pending_completion = None
        self._refresh_eta_heap(changed)
        heap = self._eta_heap
        while heap and heap[0][3] != heap[0][2].eta_epoch:
            heapq.heappop(heap)
        if not heap:
            return
        handle = {"cancelled": False}
        self._pending_completion = handle
        eta = heap[0][0]

        def fire() -> None:
            if handle["cancelled"]:
                return
            self._pending_completion = None
            self._advance()
            finished = [flow for flow in self._flows.values() if flow.finished]
            for flow in finished:
                self._remove_flow(flow)
            for flow in finished:
                if self.observer is not None:
                    self.observer.flow_finished(
                        self._sim.now,
                        flow.links,
                        flow.size,
                        self._sim.now - flow.started_at,
                    )
                flow.done.succeed(self._sim.now - flow.started_at)
            self._reschedule()

        self._sim.call_at(eta, fire)


class ExclusivePathNetwork:
    """Transfers hold every link on their path exclusively (CSIM semantics).

    Pending transfers sit in one global FIFO; whenever links free up, the
    queue is scanned in arrival order and every request whose links are all
    free is granted (first-fit, so a blocked wide request does not starve
    narrow ones behind it — matching how CSIM facility queues behave).
    """

    __slots__ = ("_sim", "_capacities", "_busy", "_queue", "_active", "observer")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._capacities: dict[str, float] = {}
        self._busy: set[str] = set()
        self._queue: list[tuple[tuple[str, ...], float, Event]] = []
        #: Active holds by completion event, so a hold can be cancelled.
        self._active: dict[Event, dict] = {}
        #: Optional network observer (same protocol as FluidNetwork's).
        self.observer = None

    def add_link(self, name: str, capacity: float) -> None:
        """Register a link with the given capacity."""
        if capacity <= 0:
            raise ValueError(f"link {name!r} capacity must be positive, got {capacity}")
        if name in self._capacities:
            raise ValueError(f"duplicate link {name!r}")
        self._capacities[name] = capacity

    def has_link(self, name: str) -> bool:
        """Whether a link with this name exists."""
        return name in self._capacities

    @property
    def capacities(self) -> dict[str, float]:
        """A copy of the registered link capacities."""
        return dict(self._capacities)

    def _notify_rates(self) -> None:
        """Held links run at full capacity; everything else is idle."""
        self.observer.rates_updated(
            self._sim.now,
            {link: self._capacities[link] for link in self._busy},
        )

    def transfer(self, links: list[str], size: float) -> Event:
        """Queue a transfer over ``links``; event fires when it completes."""
        done = self._sim.event(name="hold")
        for link in links:
            if link not in self._capacities:
                raise KeyError(f"unknown link {link!r}")
        if size <= 0 or not links:
            done.succeed()
            return done
        self._queue.append((tuple(links), float(size), done))
        self._drain()
        return done

    def active_flow_count(self, link: str | None = None) -> int:
        """Busy-link count proxy, for interface parity with FluidNetwork."""
        if link is None:
            return len(self._busy)
        return 1 if link in self._busy else 0

    def cancel(self, done: Event) -> bool:
        """Abort a queued or in-flight hold whose completion event is ``done``.

        Returns True if found (the event will never fire), False otherwise.
        """
        for index, (_links, _size, pending) in enumerate(self._queue):
            if pending is done:
                del self._queue[index]
                return True
        handle = self._active.pop(done, None)
        if handle is None:
            return False
        handle["cancelled"] = True
        self._busy.difference_update(handle["links"])
        if self.observer is not None:
            if hasattr(self.observer, "flow_cancelled"):
                self.observer.flow_cancelled(
                    self._sim.now,
                    handle["links"],
                    handle["size"],
                    # Exclusive holds move no partial bytes; the hold simply ends.
                    0.0,
                )
            self._notify_rates()
        self._drain()
        return True

    def _drain(self) -> None:
        granted_any = True
        while granted_any:
            granted_any = False
            for index, (links, size, done) in enumerate(self._queue):
                if any(link in self._busy for link in links):
                    continue
                del self._queue[index]
                self._busy.update(links)
                duration = size / min(self._capacities[link] for link in links)
                started = self._sim.now
                handle = {"links": links, "size": size, "cancelled": False}
                self._active[done] = handle
                if self.observer is not None:
                    self.observer.flow_started(self._sim.now, links, size)
                    self._notify_rates()

                def release(
                    links=links, done=done, started=started, size=size, handle=handle
                ) -> None:
                    if handle["cancelled"]:
                        return
                    self._active.pop(done, None)
                    self._busy.difference_update(links)
                    if self.observer is not None:
                        self.observer.flow_finished(
                            self._sim.now, links, size, self._sim.now - started
                        )
                        self._notify_rates()
                    done.succeed(self._sim.now - started)
                    self._drain()

                self._sim.call_in(duration, release)
                granted_any = True
                break
