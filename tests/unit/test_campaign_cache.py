"""Unit tests for the integrity-verified result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.cache import (
    ENTRY_SCHEMA,
    ResultCache,
    cache_key,
    canonical_json,
    payload_sha256,
    write_atomic,
)

PAYLOAD = {"digests": {"makespan": [1, 2, 3]}, "jobs": {"done": 4}, "pi": 3.25}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=str(tmp_path / "cache"), code_version="1.0.0")


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_float_roundtrip_exact(self):
        payload = {"x": 0.1 + 0.2, "y": 1e-17}
        assert json.loads(canonical_json(payload)) == payload


class TestKeys:
    def test_key_binds_code_version(self):
        spec = payload_sha256(PAYLOAD)
        assert cache_key(spec, "1.0.0") != cache_key(spec, "1.0.1")

    def test_key_binds_spec(self):
        assert cache_key("a", "1.0.0") != cache_key("b", "1.0.0")


class TestRoundTrip:
    def test_put_get(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_is_miss(self, cache):
        assert cache.get(cache.key_for("nope")) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_unserialisable_payload_raises(self, cache):
        with pytest.raises(TypeError):
            cache.put(cache.key_for("spec"), {"x": object()})

    def test_entries_are_sharded(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        assert os.path.exists(
            os.path.join(cache.directory, key[:2], f"{key}.json")
        )


class TestCorruptionDetection:
    def _entry_path(self, cache, key):
        return os.path.join(cache.directory, key[:2], f"{key}.json")

    def _corrupt_one_byte(self, path):
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        # Flip a byte inside the payload body, keeping the JSON parseable:
        # change a digit of a stored number.
        target = raw.find(b"3.25")
        assert target >= 0
        raw[target] = ord(b"9")
        with open(path, "wb") as handle:
            handle.write(raw)

    def test_flipped_byte_detected_and_quarantined(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        path = self._entry_path(cache, key)
        self._corrupt_one_byte(path)

        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)
        quarantined = os.listdir(cache.quarantine_dir)
        assert quarantined == [f"{key}.payload-hash-mismatch.json"]

    def test_corrupt_entry_recomputed_via_put(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        self._corrupt_one_byte(self._entry_path(cache, key))
        assert cache.get(key) is None
        # The campaign recomputes and stores; the cache is healthy again.
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD

    def test_truncated_entry_is_corrupt(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        path = self._entry_path(cache, key)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert os.listdir(cache.quarantine_dir) == [f"{key}.malformed-json.json"]

    def test_wrong_schema_is_corrupt(self, cache, tmp_path):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        path = self._entry_path(cache, key)
        entry = json.loads(open(path).read())
        entry["schema"] = "something/else"
        write_atomic(path, json.dumps(entry))
        assert cache.get(key) is None
        assert os.listdir(cache.quarantine_dir) == [f"{key}.bad-schema.json"]

    def test_key_mismatch_is_corrupt(self, cache):
        key = cache.key_for("spec")
        other = cache.key_for("other")
        cache.put(key, PAYLOAD)
        # Copy the entry for "spec" under the address for "other".
        source = self._entry_path(cache, key)
        target = self._entry_path(cache, other)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        with open(source) as handle:
            write_atomic(target, handle.read())
        assert cache.get(other) is None
        assert f"{other}.key-mismatch.json" in os.listdir(cache.quarantine_dir)

    def test_version_mismatch_is_corrupt(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        stale = ResultCache(directory=cache.directory, code_version="0.9.0")
        # Same key string looked up by a different code version resolves to
        # a different address entirely -- a plain miss, not a hit.
        assert stale.key_for("spec") != key
        # But an entry whose *recorded* version disagrees is a corruption.
        path = self._entry_path(cache, key)
        entry = json.loads(open(path).read())
        entry["code_version"] = "0.9.0"
        write_atomic(path, json.dumps(entry))
        assert cache.get(key) is None
        assert f"{key}.version-mismatch.json" in os.listdir(cache.quarantine_dir)

    def test_entry_schema_tag(self, cache):
        key = cache.key_for("spec")
        cache.put(key, PAYLOAD)
        entry = json.loads(open(self._entry_path(cache, key)).read())
        assert entry["schema"] == ENTRY_SCHEMA
        assert entry["payload_sha256"] == payload_sha256(PAYLOAD)


class TestWriteAtomic:
    def test_no_tmp_residue(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_atomic(path, "hello\n")
        assert open(path).read() == "hello\n"
        assert [entry for entry in os.listdir(tmp_path) if ".tmp" in entry] == []

    def test_overwrites_in_place(self, tmp_path):
        path = str(tmp_path / "out.json")
        write_atomic(path, "one\n")
        write_atomic(path, "two\n")
        assert open(path).read() == "two\n"
