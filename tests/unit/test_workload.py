"""Unit tests for open-loop arrival processes."""

from __future__ import annotations

import pytest

from repro.mapreduce.config import JobConfig
from repro.mapreduce.workload import (
    PoissonArrivals,
    TraceArrivals,
    arrivals_from_dict,
)
from repro.sim.rng import RngStreams


class TestPoissonArrivals:
    def test_same_seed_same_stream(self):
        process = PoissonArrivals(mean_interarrival=60.0)
        first = process.generate(RngStreams(5), 3600.0)
        second = process.generate(RngStreams(5), 3600.0)
        assert first == second

    def test_different_seeds_differ(self):
        process = PoissonArrivals(mean_interarrival=60.0)
        assert process.generate(RngStreams(5), 3600.0) != process.generate(
            RngStreams(6), 3600.0
        )

    def test_submit_times_increase_within_horizon(self):
        process = PoissonArrivals(mean_interarrival=60.0)
        jobs = process.generate(RngStreams(1), 3600.0)
        assert jobs, "an hour at one-per-minute should produce arrivals"
        times = [job.submit_time for job in jobs]
        assert times == sorted(times)
        assert all(0.0 < at < 3600.0 for at in times)

    def test_mean_rate_roughly_right(self):
        process = PoissonArrivals(mean_interarrival=60.0)
        jobs = process.generate(RngStreams(2), 60.0 * 60.0 * 24.0)
        assert 0.8 * 1440 < len(jobs) < 1.2 * 1440

    def test_multi_tenant_weights(self):
        small = JobConfig(num_blocks=10)
        large = JobConfig(num_blocks=100)
        process = PoissonArrivals(
            mean_interarrival=10.0,
            templates=(small, large),
            weights=(9.0, 1.0),
        )
        jobs = process.generate(RngStreams(3), 40000.0)
        shares = sum(job.num_blocks == 10 for job in jobs) / len(jobs)
        assert shares > 0.75

    def test_zero_weight_tenant_never_picked(self):
        process = PoissonArrivals(
            mean_interarrival=10.0,
            templates=(JobConfig(num_blocks=10), JobConfig(num_blocks=100)),
            weights=(1.0, 0.0),
        )
        jobs = process.generate(RngStreams(3), 10000.0)
        assert all(job.num_blocks == 10 for job in jobs)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(mean_interarrival=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(templates=())
        with pytest.raises(ValueError):
            PoissonArrivals(weights=(1.0, 2.0))  # one template, two weights
        with pytest.raises(ValueError):
            PoissonArrivals(weights=(-1.0,))


class TestTraceArrivals:
    def test_replays_sorted_and_truncated(self):
        process = TraceArrivals(submit_times=(50.0, 10.0, 999.0))
        jobs = process.generate(RngStreams(0), 100.0)
        assert [job.submit_time for job in jobs] == [10.0, 50.0]

    def test_templates_cycle(self):
        process = TraceArrivals(
            submit_times=(1.0, 2.0, 3.0),
            templates=(JobConfig(num_blocks=10), JobConfig(num_blocks=20)),
        )
        jobs = process.generate(RngStreams(0), 10.0)
        assert [job.num_blocks for job in jobs] == [10, 20, 10]

    def test_negative_submit_time_rejected(self):
        with pytest.raises(ValueError):
            TraceArrivals(submit_times=(-1.0,))


class TestRoundTrips:
    def test_poisson_round_trip(self):
        process = PoissonArrivals(
            mean_interarrival=120.0,
            templates=(JobConfig(num_blocks=30), JobConfig(num_blocks=90)),
            weights=(2.0, 1.0),
        )
        assert arrivals_from_dict(process.to_dict()) == process

    def test_trace_round_trip(self):
        process = TraceArrivals(
            submit_times=(5.0, 10.0), templates=(JobConfig(num_blocks=12),)
        )
        assert arrivals_from_dict(process.to_dict()) == process

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            arrivals_from_dict({"kind": "martian"})
