"""Unit tests for shuffle bookkeeping."""

from __future__ import annotations

from repro.mapreduce.shuffle import JobShuffle


class TestDeposit:
    def test_splits_evenly_across_reducers(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=4, topology=small_topology)
        shuffle.deposit(map_node=0, total_bytes=100.0)
        for index in range(4):
            pending = shuffle.take(index)
            assert pending == {0: 25.0}

    def test_attributes_to_source_rack(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=1, topology=small_topology)
        shuffle.deposit(map_node=4, total_bytes=10.0)  # node 4 is in rack 1
        assert shuffle.take(0) == {1: 10.0}

    def test_accumulates_per_rack(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=1, topology=small_topology)
        shuffle.deposit(0, 10.0)
        shuffle.deposit(1, 10.0)
        shuffle.deposit(4, 10.0)
        assert shuffle.take(0) == {0: 20.0, 1: 10.0}

    def test_zero_reducers_noop(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=0, topology=small_topology)
        shuffle.deposit(0, 10.0)  # must not raise

    def test_zero_bytes_noop(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=2, topology=small_topology)
        shuffle.deposit(0, 0.0)
        assert shuffle.take(0) == {}


class TestTakeAndWait:
    def test_take_clears(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=1, topology=small_topology)
        shuffle.deposit(0, 10.0)
        assert shuffle.take(0) != {}
        assert shuffle.take(0) == {}

    def test_wait_fires_on_deposit(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=1, topology=small_topology)
        wakeup = shuffle.wait(0)
        assert not wakeup.fired
        shuffle.deposit(0, 5.0)
        assert wakeup.fired

    def test_wait_is_shared_until_fire(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=1, topology=small_topology)
        assert shuffle.wait(0) is shuffle.wait(0)

    def test_notify_maps_done_wakes_all(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=3, topology=small_topology)
        wakeups = [shuffle.wait(index) for index in range(3)]
        shuffle.notify_maps_done()
        assert all(wakeup.fired for wakeup in wakeups)

    def test_totals_tracked(self, sim, small_topology):
        shuffle = JobShuffle(sim, num_reducers=2, topology=small_topology)
        shuffle.deposit(0, 10.0)
        shuffle.take(0)
        assert shuffle.total_deposited == 10.0
        assert shuffle.total_drained == 5.0
