#!/usr/bin/env python
"""Run the storage layer's online repair *during* the MapReduce job.

``repair_planning.py`` prices a full-node reconstruction offline; this
example actually runs one, concurrently with the job it is racing.  A node
fails, map tasks start taking degraded reads, and a background repair
driver (throttled to a bandwidth cap) rebuilds the lost blocks on
surviving nodes.  Every repaired block flips its pending map task back
from DEGRADED to a normal read -- the repair *reclaims* foreground work --
while the repair flows compete with map and shuffle traffic on the very
same links.

Run:  python examples/repair_during_job.py
"""

from dataclasses import replace

from repro import (
    CodeParams,
    FailurePattern,
    JobConfig,
    RepairConfig,
    SimulationConfig,
    run_simulation,
)
from repro.cluster.network import MB, mbps
from repro.obs import ObservabilityCollector
from repro.storage.repair_driver import RepairDriver

# Locality-first scheduling leaves degraded tasks pending until the end of
# the map phase -- exactly the window an online repair can exploit.
BASE = SimulationConfig(
    num_nodes=12,
    num_racks=3,
    map_slots=2,
    reduce_slots=1,
    code=CodeParams(6, 4),
    block_size=64 * MB,
    rack_bandwidth=mbps(1000),
    jobs=(JobConfig(num_blocks=192, num_reduce_tasks=4, map_time_mean=10.0, map_time_std=0.5),),
    failure=FailurePattern.SINGLE_NODE,
    scheduler="LF",
    seed=7,
)


def _flow_bytes(collector: ObservabilityCollector) -> tuple[float, float]:
    """(repair_bytes, foreground_bytes) completed, split by throttle link."""
    repair = foreground = 0.0
    for event in collector.events:
        if event.kind != "flow.end":
            continue
        if RepairDriver.THROTTLE in event.fields["links"]:
            repair += event.fields["size"]
        else:
            foreground += event.fields["size"]
    return repair, foreground


def main() -> None:
    baseline = run_simulation(BASE)
    print("without repair:")
    print(f"  runtime          {baseline.job(0).runtime:8.1f} s")
    print(f"  degraded tasks   {baseline.job(0).degraded_task_count:8d}")

    collector = ObservabilityCollector()
    config = replace(
        BASE, repair=RepairConfig(bandwidth_cap=mbps(800), concurrent_repairs=4)
    )
    result = run_simulation(config, observer=collector)
    repairs = result.faults.repairs
    reclaimed = sum(record.reclaimed_tasks for record in repairs)
    window = (
        (min(r.started_at for r in repairs), max(r.finished_at for r in repairs))
        if repairs
        else (0.0, 0.0)
    )
    print("\nwith an online repair driver (800 Mbps cap, 4 workers):")
    print(f"  runtime          {result.job(0).runtime:8.1f} s")
    print(f"  degraded tasks   {result.job(0).degraded_task_count:8d}")
    print(
        f"  repairs          {len(repairs):8d} blocks rebuilt between"
        f" {window[0]:.1f} s and {window[1]:.1f} s"
    )
    print(f"  reclassified     {reclaimed:8d} pending degraded tasks -> normal reads")

    repair_bytes, foreground_bytes = _flow_bytes(collector)
    total = repair_bytes + foreground_bytes
    print("\nbandwidth split (completed flow bytes):")
    print(
        f"  repair traffic     {repair_bytes / (1024 ** 3):6.2f} GiB"
        f"  ({repair_bytes / total:5.1%})"
    )
    print(
        f"  foreground traffic {foreground_bytes / (1024 ** 3):6.2f} GiB"
        f"  ({foreground_bytes / total:5.1%})"
    )
    throttle = next(
        (row for row in collector.link_summary() if row[0] == RepairDriver.THROTTLE),
        None,
    )
    if throttle is not None:
        print(
            f"  repair cap usage   avg {throttle[1]:5.1%}  peak {throttle[2]:5.1%}"
        )

    print(
        "\nEvery block the repair driver lands before the scheduler reaches"
        "\nits task converts a degraded read back into a normal one; the"
        "\nprice is repair traffic sharing links with the job.  Tune the"
        "\nbandwidth cap to trade repair speed against foreground slowdown."
    )


if __name__ == "__main__":
    main()
