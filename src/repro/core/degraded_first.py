"""Algorithm 2: basic degraded-first scheduling (BDF).

The pacing rule: launch a degraded task ahead of local work whenever the
launched-degraded fraction is no more than the launched-map fraction,

    m / M  >=  m_d / M_d,

which spreads degraded launches evenly through the map phase.  At most one
degraded task is assigned per heartbeat (Line 4 of Algorithm 2) so that a
slave never runs two simultaneous degraded reads.  The remaining free slots
are filled with local then remote tasks exactly as in Algorithm 1 -- note
that the fallback deliberately excludes degraded tasks.
"""

from __future__ import annotations

from repro.core.scheduler import Scheduler
from repro.core.tasks import JobTaskState
from repro.mapreduce.job import MapAssignment

#: Test-only mutation switch: when True the scheduler launches degraded
#: tasks even when pacing forbids it.  Exists solely so the sanitizer's
#: mutation smoke test can prove the ``bdf-pacing`` invariant is not
#: vacuous (tests monkeypatch it; production code never sets it).
_FORCE_PACING_BREAK = False


def pacing_allows_degraded(job: JobTaskState) -> bool:
    """The paper's launch condition ``m/M >= m_d/M_d``.

    Evaluated in cross-multiplied form to avoid dividing by zero when a job
    has no degraded tasks (then the condition is irrelevant anyway).
    """
    if job.M_d == 0:
        return False
    return job.m * job.M_d >= job.m_d * job.M


class BasicDegradedFirstScheduler(Scheduler):
    """The paper's BDF (Algorithm 2)."""

    name = "BDF"

    def assign_maps(
        self,
        slave_id: int,
        free_map_slots: int,
        jobs: list[JobTaskState],
        now: float,
    ) -> list[MapAssignment]:
        tracing = self.bus is not None
        assignments: list[MapAssignment] = []
        degraded_task_assigned = False
        for job in jobs:
            if (
                not degraded_task_assigned
                and free_map_slots > 0
                and job.has_unassigned_degraded()
            ):
                # Pacing state is captured before any pop mutates m/m_d.
                pacing = self.pacing_fields(job) if tracing else None
                if not (pacing_allows_degraded(job) or _FORCE_PACING_BREAK):
                    if tracing:
                        self.trace_decision(
                            now, slave_id, job_id=job.job_id,
                            action="skip-degraded", reason="pacing", **pacing,
                        )
                elif not self._degraded_guards(job, slave_id, now):
                    if tracing:
                        guards = self.last_guard_trace or {}
                        reason = guards.get("rejected_by", "guard")
                        self.trace_decision(
                            now, slave_id, job_id=job.job_id,
                            action="skip-degraded", reason=f"{reason}-guard",
                            **pacing, **guards,
                        )
                else:
                    assignment = self._try_degraded(job, slave_id)
                    if assignment is not None:
                        assignments.append(assignment)
                        free_map_slots -= 1
                        degraded_task_assigned = True
                        self._on_degraded_assigned(slave_id, now)
                        if tracing:
                            guards = self.last_guard_trace or {}
                            self.trace_decision(
                                now, slave_id, job_id=job.job_id,
                                action="assign", reason="degraded-first",
                                category=assignment.category.value,
                                block=str(assignment.block),
                                **pacing, **guards,
                            )
            while free_map_slots > 0:
                pacing = self.pacing_fields(job) if tracing else None
                assignment = self._try_local(job, slave_id) or self._try_remote(job, slave_id)
                if assignment is None:
                    break
                assignments.append(assignment)
                free_map_slots -= 1
                if tracing:
                    self.trace_decision(
                        now, slave_id, job_id=job.job_id,
                        action="assign", reason="locality-fallback",
                        category=assignment.category.value,
                        block=str(assignment.block),
                        **pacing,
                    )
            if free_map_slots == 0:
                break
        return assignments

    # -- hooks overridden by the enhanced scheduler ---------------------------

    def _degraded_guards(self, job: JobTaskState, slave_id: int, now: float) -> bool:
        """Extra admission checks before a degraded launch; BDF has none."""
        del job, slave_id, now
        return True

    def _on_degraded_assigned(self, slave_id: int, now: float) -> None:
        """Bookkeeping after a degraded launch; BDF keeps none."""
        del slave_id, now
