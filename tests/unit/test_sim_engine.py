"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    AllOf,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestClockAndScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_call_in_order(self, sim):
        log = []
        sim.call_in(2.0, lambda: log.append("b"))
        sim.call_in(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]
        assert sim.now == 2.0

    def test_same_time_fifo(self, sim):
        log = []
        for name in "abc":
            sim.call_in(1.0, lambda name=name: log.append(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self, sim):
        sim.call_in(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_run_until(self, sim):
        log = []
        sim.call_in(1.0, lambda: log.append(1))
        sim.call_in(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_peek(self, sim):
        assert sim.peek() is None
        sim.call_in(3.0, lambda: None)
        assert sim.peek() == 3.0


class TestProcesses:
    def test_timeout_sequencing(self, sim):
        log = []

        def worker(name, delay):
            yield Timeout(delay)
            log.append((sim.now, name))

        sim.spawn(worker("slow", 2.0))
        sim.spawn(worker("fast", 1.0))
        sim.run()
        assert log == [(1.0, "fast"), (2.0, "slow")]

    def test_negative_timeout(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_wait_on_event_value(self, sim):
        gate = sim.event()
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        sim.spawn(waiter())
        sim.call_in(4.0, lambda: gate.succeed("payload"))
        sim.run()
        assert got == ["payload"]

    def test_wait_on_already_fired_event(self, sim):
        gate = sim.event()
        gate.succeed(7)
        got = []

        def waiter():
            got.append((yield gate))

        sim.spawn(waiter())
        sim.run()
        assert got == [7]

    def test_event_fires_once(self, sim):
        gate = sim.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_event_value_before_fire(self, sim):
        gate = sim.event()
        with pytest.raises(SimulationError):
            _ = gate.value

    def test_event_fail_raises_in_waiter(self, sim):
        gate = sim.event()
        caught = []

        def waiter():
            try:
                yield gate
            except RuntimeError as error:
                caught.append(str(error))

        sim.spawn(waiter())
        sim.call_in(1.0, lambda: gate.fail(RuntimeError("boom")))
        sim.run()
        assert caught == ["boom"]

    def test_wait_on_process(self, sim):
        log = []

        def child():
            yield Timeout(3.0)
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            log.append((sim.now, result))

        sim.spawn(parent())
        sim.run()
        assert log == [(3.0, "child-result")]

    def test_all_of(self, sim):
        def waiter(events, log):
            values = yield AllOf(events)
            log.append((sim.now, values))

        first, second = sim.event(), sim.event()
        log = []
        sim.spawn(waiter([first, second], log))
        sim.call_in(1.0, lambda: first.succeed("a"))
        sim.call_in(2.0, lambda: second.succeed("b"))
        sim.run()
        assert log == [(2.0, ["a", "b"])]

    def test_all_of_empty(self, sim):
        log = []

        def waiter():
            values = yield AllOf([])
            log.append(values)

        sim.spawn(waiter())
        sim.run()
        assert log == [[]]

    def test_unsupported_yield(self, sim):
        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestInterrupt:
    def test_interrupt_wakes_with_exception(self, sim):
        log = []

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        process = sim.spawn(sleeper())
        sim.call_in(1.0, lambda: process.interrupt("stop"))
        sim.run()
        assert log == [(1.0, "stop")]

    def test_interrupt_while_waiting_event(self, sim):
        gate = sim.event()
        log = []

        def waiter():
            try:
                yield gate
            except Interrupt:
                log.append(sim.now)

        process = sim.spawn(waiter())
        sim.call_in(2.0, lambda: process.interrupt())
        sim.run()
        assert log == [2.0]

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick():
            yield Timeout(0.0)

        process = sim.spawn(quick())
        sim.run()
        process.interrupt()  # must not raise
        sim.run()

    def test_unhandled_interrupt_terminates_quietly(self, sim):
        def sleeper():
            yield Timeout(100.0)

        process = sim.spawn(sleeper())
        sim.call_in(1.0, lambda: process.interrupt())
        sim.run()
        assert process.finished.fired
