"""Figure 9: testbed runtimes of LF vs EDF, single-job and multi-job.

Runs the functional testbed (:mod:`repro.testbed`) the way Section VI runs
Hadoop: a 12-slave, 3-rack cluster storing erasure-coded text with a
(12, 10) code; one randomly chosen slave is killed; WordCount, Grep and
LineCount run under each scheduler; results are averaged over repeated runs
(the paper uses five).

* 9(a) -- each job alone;
* 9(b) -- all three jobs submitted together, FIFO-ordered
  (WordCount, Grep, LineCount).

Paper shapes: EDF cuts single-job runtime by ~25-27% for every job; in the
multi-job scenario the cuts are ~17-28% with WordCount (the first job)
benefiting least, since EDF's early degraded tasks compete with nothing
ahead of them while later jobs' degraded reads overlap the previous job's
shuffle.
"""

from __future__ import annotations

import os
import statistics

from repro.testbed.engine import TestbedCluster, TestbedConfig, TestbedJobResult
from repro.testbed.jobs import GrepJob, LineCountJob, MapReduceJob, WordCountJob

#: Schedulers compared.
SCHEDULERS = ("LF", "EDF")


def default_runs() -> int:
    """Repetitions per configuration; the paper averages five runs."""
    return int(os.environ.get("REPRO_TESTBED_RUNS", "3"))


def make_jobs() -> list[MapReduceJob]:
    """The three jobs in the paper's submission order."""
    return [WordCountJob(), GrepJob("water"), LineCountJob()]


def build_cluster(seed: int = 0, config: TestbedConfig | None = None) -> TestbedCluster:
    """Create the testbed cluster (one shared corpus for all runs)."""
    return TestbedCluster(config or TestbedConfig(seed=seed))


def run_fig9a(
    cluster: TestbedCluster | None = None, runs: int | None = None
) -> dict[str, dict[str, list[float]]]:
    """Figure 9(a): single-job runtimes.

    Returns ``{job_name: {scheduler: [runtime, ...]}}``.
    """
    cluster = cluster or build_cluster()
    runs = runs or default_runs()
    failed = cluster.kill_node()
    outcome: dict[str, dict[str, list[float]]] = {}
    for job in make_jobs():
        outcome[job.name] = {}
        for scheduler in SCHEDULERS:
            samples = [
                cluster.run_job(job, scheduler=scheduler, failed_nodes=failed).runtime
                for _ in range(runs)
            ]
            outcome[job.name][scheduler] = samples
    return outcome


def run_fig9b(
    cluster: TestbedCluster | None = None, runs: int | None = None
) -> dict[str, dict[str, list[float]]]:
    """Figure 9(b): multi-job runtimes (three jobs FIFO)."""
    cluster = cluster or build_cluster()
    runs = runs or default_runs()
    failed = cluster.kill_node()
    outcome: dict[str, dict[str, list[float]]] = {
        job.name: {scheduler: [] for scheduler in SCHEDULERS} for job in make_jobs()
    }
    for scheduler in SCHEDULERS:
        for _ in range(runs):
            results = cluster.run_jobs(make_jobs(), scheduler=scheduler, failed_nodes=failed)
            for result in results:
                outcome[result.job_name][scheduler].append(result.runtime)
    return outcome


def collect_task_breakdown(
    cluster: TestbedCluster | None = None, runs: int | None = None
) -> dict[str, dict[str, TestbedJobResult]]:
    """Single-job runs keeping full task records (feeds Table I)."""
    cluster = cluster or build_cluster()
    runs = runs or default_runs()
    failed = cluster.kill_node()
    kept: dict[str, dict[str, TestbedJobResult]] = {}
    for job in make_jobs():
        kept[job.name] = {}
        for scheduler in SCHEDULERS:
            results = [
                cluster.run_job(job, scheduler=scheduler, failed_nodes=failed)
                for _ in range(runs)
            ]
            # Merge the runs' task lists into one result for averaging.
            merged = TestbedJobResult(
                job_name=job.name,
                scheduler=scheduler,
                runtime=statistics.mean(result.runtime for result in results),
                tasks=[task for result in results for task in result.tasks],
                output=results[0].output,
            )
            kept[job.name][scheduler] = merged
    return kept


def format_runtimes(outcome: dict[str, dict[str, list[float]]], title: str) -> str:
    """Render a Figure 9 panel as text."""
    lines = [title, "=" * len(title)]
    lines.append(f"{'job':>10}  {'LF':>18}  {'EDF':>18}  {'reduction':>9}")
    for job_name, by_scheduler in outcome.items():
        lf = statistics.mean(by_scheduler["LF"])
        edf = statistics.mean(by_scheduler["EDF"])
        lf_span = f"{lf:.2f} [{min(by_scheduler['LF']):.2f},{max(by_scheduler['LF']):.2f}]"
        edf_span = f"{edf:.2f} [{min(by_scheduler['EDF']):.2f},{max(by_scheduler['EDF']):.2f}]"
        lines.append(
            f"{job_name:>10}  {lf_span:>18}  {edf_span:>18}  {(lf - edf) / lf:>8.1%}"
        )
    return "\n".join(lines)


def main() -> str:
    """Run both panels on one shared cluster and return the report."""
    cluster = build_cluster()
    sections = [
        format_runtimes(run_fig9a(cluster), "Figure 9(a): single-job runtime (s)"),
        format_runtimes(run_fig9b(cluster), "Figure 9(b): multi-job runtime (s)"),
    ]
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(main())
