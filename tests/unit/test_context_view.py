"""Unit tests for the scheduler context view and the policy registry.

Includes the regression test promised by the ``SchedulerContext``
docstring: ``expected_degraded_read_time`` is computed once from static
cluster/code properties and must stay fixed across mid-trial failures and
recoveries, while ``live_nodes`` tracks membership in place.
"""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.core.locality_first import LocalityFirstScheduler
from repro.core.scheduler import (
    POLICIES,
    PolicyRegistry,
    Scheduler,
    SchedulerContext,
    register_scheduler,
)
from repro.core.tasks import JobTaskState
from repro.ec.codec import CodeParams
from repro.faults.schedule import FailEvent, FailureSchedule, RecoverEvent
from repro.mapreduce.config import JobConfig, SimulationConfig
from repro.mapreduce.simulation import expected_degraded_read_time, run_simulation
from repro.sim.rng import RngStreams
from repro.storage.hdfs import HdfsRaidCluster


def build_context(num_blocks=24, fail_node=0, speed_factors=None, map_slots=2):
    topology = ClusterTopology.from_rack_sizes(
        [3, 3], map_slots=map_slots, speed_factors=speed_factors
    )
    cluster = HdfsRaidCluster(
        topology, CodeParams(4, 2), num_native_blocks=num_blocks,
        placement="random", rng=RngStreams(11),
    )
    failed = frozenset({fail_node})
    config = JobConfig(num_blocks=num_blocks, num_reduce_tasks=2)
    state = JobTaskState(
        0, config, cluster.failure_view(failed), cluster.block_map, topology
    )
    context = SchedulerContext(
        topology=topology,
        live_nodes=frozenset(topology.node_ids()) - failed,
        expected_degraded_read_time=4.0,
        map_time_mean=config.map_time_mean,
        reduce_slowstart=0.05,
    )
    return context, state, cluster


class TestExpectedDegradedReadTime:
    def test_matches_the_analysis_formula(self):
        config = SimulationConfig()
        R, k = config.num_racks, config.code.k  # noqa: N806 - paper notation
        expected = (R - 1) * k * config.block_size / (R * config.rack_bandwidth)
        assert expected_degraded_read_time(config) == pytest.approx(expected)

    def test_scales_with_static_terms_only(self):
        base = SimulationConfig()
        doubled_block = SimulationConfig(block_size=base.block_size * 2)
        assert expected_degraded_read_time(doubled_block) == pytest.approx(
            2 * expected_degraded_read_time(base)
        )
        # More nodes per rack, same racks/code/bandwidth: identical estimate.
        more_nodes = SimulationConfig(num_nodes=80)
        assert expected_degraded_read_time(more_nodes) == pytest.approx(
            expected_degraded_read_time(base)
        )


class _ContextProbeScheduler(LocalityFirstScheduler):
    """LF that snapshots the context view at every heartbeat."""

    name = "CTX-PROBE"

    #: ``(now, expected_degraded_read_time, frozenset(live_nodes))`` samples.
    samples: list[tuple[float, float, frozenset[int]]] = []

    def assign_maps(self, slave_id, free_map_slots, jobs, now):
        type(self).samples.append(
            (
                now,
                self.context.expected_degraded_read_time,
                frozenset(self.context.live_nodes),
            )
        )
        return super().assign_maps(slave_id, free_map_slots, jobs, now)


class TestContextStalenessRegression:
    """The docstring's contract, pinned end-to-end through a real trial."""

    def test_edrt_fixed_while_live_nodes_track_churn(self):
        register_scheduler(_ContextProbeScheduler)
        _ContextProbeScheduler.samples = []
        config = SimulationConfig(
            scheduler="CTX-PROBE", seed=2, num_nodes=6, num_racks=2,
            map_slots=2, code=CodeParams(4, 2),
            jobs=(JobConfig(num_blocks=60, num_reduce_tasks=2),),
            failure=FailurePattern.NONE,
            failure_schedule=FailureSchedule(
                (FailEvent(at=5.0, node=1), RecoverEvent(at=60.0, node=1))
            ),
        )
        run_simulation(config)
        samples = _ContextProbeScheduler.samples
        assert samples, "the probe scheduler never ran"

        # The threshold is a pure function of static config terms...
        values = {edrt for _, edrt, _ in samples}
        assert values == {expected_degraded_read_time(config)}

        # ...while the live-node view mutates in place under churn: node 1
        # leaves after its heartbeat expires and rejoins on recovery.
        down = [now for now, _, live in samples if 1 not in live]
        assert down, "node 1 never left the live view"
        rejoined = [
            now for now, _, live in samples if 1 in live and now > 60.0
        ]
        assert rejoined, "node 1 never rejoined the live view"
        assert min(down) < min(rejoined)


class TestContextHelpers:
    def test_speed_and_slots_lookups(self):
        speeds = (1.0, 0.5, 2.0, 1.0, 1.0, 1.0)
        context, _, _ = build_context(speed_factors=speeds, map_slots=3)
        assert context.speed_factor(1) == 0.5
        assert context.speed_factor(2) == 2.0
        assert context.map_slots_of(0) == 3

    def test_mean_speed_factor_over_live_nodes_only(self):
        speeds = (4.0, 1.0, 1.0, 1.0, 1.0, 1.0)
        context, _, _ = build_context(fail_node=0, speed_factors=speeds)
        # Node 0 (the fast one) is failed, so the mean ignores it.
        assert context.mean_speed_factor() == pytest.approx(1.0)
        empty = SchedulerContext(
            topology=context.topology, live_nodes=frozenset(),
            expected_degraded_read_time=1.0, map_time_mean=1.0,
            reduce_slowstart=0.05,
        )
        assert empty.mean_speed_factor() == 1.0

    def test_node_backlog_counts_and_time(self):
        context, state, _ = build_context(map_slots=2)
        jobs = [state]
        for node_id in context.topology.node_ids():
            backlog = context.node_backlog(jobs, node_id)
            assert backlog == state.pending_node_local_count(node_id)
            expected_time = backlog * context.map_time_mean / (
                context.map_slots_of(node_id) * context.speed_factor(node_id)
            )
            assert context.node_backlog_time(jobs, node_id) == pytest.approx(
                expected_time
            )

    def test_rack_occupancy_partitions_pending_normals(self):
        context, state, _ = build_context()
        occupancy = context.rack_occupancy([state])
        assert set(occupancy) == {
            rack.rack_id for rack in context.topology.racks
        }
        assert all(count >= 0 for count in occupancy.values())
        assert sum(occupancy.values()) == sum(
            state.pending_rack_count(rack.rack_id)
            for rack in context.topology.racks
        )

    def test_degraded_census_matches_job_state(self):
        context, state, cluster = build_context()
        census = context.degraded_census([state])
        lost = set(cluster.block_map.lost_native_blocks({0}))
        assert census == {0: len(lost)}
        state.pop_degraded()
        assert context.degraded_census([state]) == {0: len(lost) - 1}

    def test_helpers_do_not_mutate_job_state(self):
        context, state, _ = build_context()
        before = (state.m, state.M, state.m_d, state.M_d)
        context.node_backlog([state], 1)
        context.node_backlog_time([state], 1)
        context.rack_occupancy([state])
        context.degraded_census([state])
        context.mean_speed_factor()
        assert (state.m, state.M, state.m_d, state.M_d) == before


class TestPolicyRegistry:
    def test_builtins_are_registered(self):
        names = POLICIES.names()
        for name in ("LF", "BDF", "EDF", "RANDOM", "FIFO", "STEAL",
                     "CPATH", "CLONE", "HETERO"):
            assert name in names
        assert names == sorted(names)

    def test_resolve_is_case_insensitive(self):
        assert POLICIES.resolve("EDF") == "EDF"
        assert POLICIES.resolve("edf") == "EDF"
        assert POLICIES.resolve("Steal") == "STEAL"

    def test_resolve_unknown_lists_alternatives(self):
        with pytest.raises(ValueError, match="NOT-A-POLICY.*choose from"):
            POLICIES.resolve("NOT-A-POLICY")

    def test_get_is_exact_match(self):
        assert POLICIES.get("LF") is LocalityFirstScheduler
        with pytest.raises(ValueError):
            POLICIES.get("lf")

    def test_describe_and_catalog(self):
        assert POLICIES.describe("LF")
        catalog = dict(POLICIES.catalog())
        assert set(catalog) == set(POLICIES.names())
        assert all(isinstance(summary, str) for summary in catalog.values())

    def test_register_rejects_missing_name(self):
        registry = PolicyRegistry()

        class Nameless(LocalityFirstScheduler):
            name = Scheduler.name

        with pytest.raises(ValueError, match="distinct"):
            registry.register(Nameless)

    def test_register_rejects_collision_with_different_class(self):
        registry = PolicyRegistry()

        class Impostor(LocalityFirstScheduler):
            name = "LF"

        with pytest.raises(ValueError, match="already taken"):
            registry.register(Impostor)

    def test_reregistering_the_same_class_is_a_noop(self):
        registry = PolicyRegistry()
        registry.register(_ContextProbeScheduler)
        registry.register(_ContextProbeScheduler)
        assert registry.get("CTX-PROBE") is _ContextProbeScheduler

    def test_create_instantiates_with_context(self):
        context, _, _ = build_context()
        scheduler = POLICIES.create("EDF", context)
        assert scheduler.name == "EDF"
        assert scheduler.context is context
