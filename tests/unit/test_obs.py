"""Unit tests for the observability layer (:mod:`repro.obs`)."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    Counter,
    EventBus,
    Gauge,
    MetricsRegistry,
    ObservabilityCollector,
    Profiler,
    TimeWeightedSeries,
    WILDCARD,
    events_jsonl,
    sanitize,
)


# -- event bus -----------------------------------------------------------------


class TestEventBus:
    def test_emit_returns_event_with_payload(self):
        bus = EventBus()
        event = bus.emit("task.launch", 3.5, node=7, kind="map")
        assert event.time == 3.5
        assert event.kind == "task.launch"
        assert event.fields == {"node": 7, "kind": "map"}

    def test_to_dict_is_flat_with_reserved_keys(self):
        bus = EventBus()
        event = bus.emit("heartbeat", 1.0, node=2, free_map=4)
        assert event.to_dict() == {
            "t": 1.0, "kind": "heartbeat", "node": 2, "free_map": 4
        }

    def test_kind_specific_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("heartbeat", seen.append)
        bus.emit("heartbeat", 0.0, node=1)
        bus.emit("task.launch", 0.0, node=1)
        assert [event.kind for event in seen] == ["heartbeat"]

    def test_wildcard_sees_everything_after_specific(self):
        bus = EventBus()
        order = []
        bus.subscribe("a", lambda e: order.append("specific"))
        bus.subscribe(WILDCARD, lambda e: order.append("wildcard"))
        bus.emit("a", 0.0)
        bus.emit("b", 0.0)
        assert order == ["specific", "wildcard", "wildcard"]

    def test_counts_and_emitted(self):
        bus = EventBus()
        for _ in range(3):
            bus.emit("a", 0.0)
        bus.emit("b", 1.0)
        assert bus.emitted == 4
        assert bus.counts == {"a": 3, "b": 1}

    def test_reserved_keys_win_in_flat_form(self):
        bus = EventBus()
        event = bus.emit("task.kill", 2.0, kind="reduce", t="not-a-clock")
        assert event.fields["kind"] == "reduce"
        # The flat form never loses the event's own kind/timestamp.
        assert event.to_dict()["kind"] == "task.kill"
        assert event.to_dict()["t"] == 2.0


# -- metrics primitives --------------------------------------------------------


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.time_series("z") is registry.time_series("z")


class TestTimeWeightedSeries:
    def test_integral_of_piecewise_constant_steps(self):
        series = TimeWeightedSeries("slots")
        series.record(0.0, 2.0)
        series.record(4.0, 1.0)
        series.record(6.0, 0.0)
        # 2 for 4s, then 1 for 2s: integral over [0, 10] = 8 + 2 + 0.
        assert series.integral(0.0, 10.0) == pytest.approx(10.0)
        assert series.average(0.0, 10.0) == pytest.approx(1.0)

    def test_windowed_integral_splits_segments(self):
        series = TimeWeightedSeries("slots")
        series.record(0.0, 4.0)
        series.record(10.0, 0.0)
        assert series.integral(5.0, 15.0) == pytest.approx(20.0)
        assert series.average(5.0, 15.0) == pytest.approx(2.0)

    def test_value_at(self):
        series = TimeWeightedSeries("slots")
        series.record(1.0, 5.0)
        series.record(3.0, 7.0)
        assert series.value_at(0.5) == 0.0  # before the first sample
        assert series.value_at(2.0) == 5.0
        assert series.value_at(3.0) == 7.0

    def test_same_time_overwrites(self):
        series = TimeWeightedSeries("slots")
        series.record(1.0, 5.0)
        series.record(1.0, 9.0)
        assert series.value_at(1.5) == 9.0
        # Initial breakpoint plus the single (collapsed) change at t=1.
        assert series.samples == [(0.0, 0.0), (1.0, 9.0)]

    def test_same_value_collapses(self):
        series = TimeWeightedSeries("slots")
        series.record(0.0, 3.0)  # overwrites the initial breakpoint
        series.record(2.0, 3.0)  # no change: dropped
        assert series.samples == [(0.0, 3.0)]

    def test_backwards_time_raises(self):
        series = TimeWeightedSeries("slots")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 2.0)

    def test_peak(self):
        series = TimeWeightedSeries("slots")
        series.record(0.0, 1.0)
        series.record(1.0, 6.0)
        series.record(2.0, 2.0)
        assert series.peak() == 6.0

    def test_empty_series(self):
        series = TimeWeightedSeries("slots")
        assert series.integral(0.0, 10.0) == 0.0
        assert series.average(0.0, 10.0) == 0.0
        assert series.peak() == 0.0


# -- profiler ------------------------------------------------------------------


class TestProfiler:
    def test_span_accumulates_wall_clock(self):
        profiler = Profiler()
        with profiler.span("setup"):
            pass
        with profiler.span("setup"):
            pass
        assert profiler.spans["setup"] >= 0.0

    def test_events_per_second(self):
        profiler = Profiler()
        profiler.spans["run"] = 2.0
        profiler.events_dispatched = 1000
        assert profiler.events_per_second == pytest.approx(500.0)

    def test_report_and_render(self):
        profiler = Profiler()
        with profiler.span("run"):
            pass
        profiler.events_dispatched = 10
        report = profiler.report()
        assert report["events_dispatched"] == 10
        assert "run" in profiler.render()


# -- exporters -----------------------------------------------------------------


class TestExport:
    def test_sanitize_replaces_non_finite(self):
        payload = {"a": math.nan, "b": [1.0, math.inf], "c": {"d": -math.inf}}
        assert sanitize(payload) == {"a": None, "b": [1.0, None], "c": {"d": None}}

    def test_events_jsonl_is_strict_json(self):
        bus = EventBus()
        events = [
            bus.emit("a", 0.0, value=math.nan),
            bus.emit("b", 1.0, node=3),
        ]
        text = events_jsonl(events)
        lines = text.strip().split("\n")
        assert len(lines) == 2
        assert json.loads(lines[0])["value"] is None
        assert json.loads(lines[1]) == {"t": 1.0, "kind": "b", "node": 3}
        assert "NaN" not in text


# -- collector -----------------------------------------------------------------


class TestCollector:
    def test_collects_events_and_counts(self):
        collector = ObservabilityCollector()
        collector.bus.emit("heartbeat", 0.0, node=1, assigned_maps=0,
                           assigned_reduces=0)
        collector.bus.emit("task.launch", 0.0, node=1)
        assert [event.kind for event in collector.events] == [
            "heartbeat", "task.launch"
        ]

    def test_decision_trace_recorded(self):
        collector = ObservabilityCollector()
        collector.bus.emit(
            "sched.decision", 1.0,
            scheduler="EDF", node=4, job_id=0, action="assign",
            reason="degraded-first", m=1, M=10, m_d=1, M_d=2,
        )
        assert len(collector.decisions) == 1
        decision = collector.decisions[0]
        assert decision.fields["reason"] == "degraded-first"
        assert collector.decision_counts[("assign", "degraded-first")] == 1

    def test_heartbeat_latency_needs_previous_beat(self):
        collector = ObservabilityCollector()
        collector.bus.emit("heartbeat", 0.0, node=1, assigned_maps=1,
                           assigned_reduces=0)
        assert collector.heartbeat_latencies == []  # first beat: no baseline
        collector.bus.emit("heartbeat", 3.0, node=1, assigned_maps=2,
                           assigned_reduces=0)
        assert collector.heartbeat_latencies == [pytest.approx(3.0)]

    def test_slot_observer_feeds_series(self):
        collector = ObservabilityCollector()
        collector.slot_changed(0.0, "map:1", 2, 4, 0)
        collector.slot_changed(5.0, "map:1", 0, 4, 1)
        collector.finalize(10.0)
        series = collector.registry.time_series("slot.map:1")
        assert series.average(0.0, 10.0) == pytest.approx(1.0)

    def test_link_observer_normalises_by_capacity(self):
        collector = ObservabilityCollector()
        collector.register_links({"rack0:up": 100.0})
        collector.rates_updated(0.0, {"rack0:up": 50.0})
        collector.rates_updated(4.0, {})
        collector.finalize(8.0)
        series = collector.registry.time_series("link.rack0:up")
        assert series.average(0.0, 8.0) == pytest.approx(0.25)

    def test_utilization_report_renders(self):
        collector = ObservabilityCollector()
        collector.slot_changed(0.0, "map:0", 1, 2, 0)
        collector.finalize(2.0)
        report = collector.render_utilization_report()
        assert "map slots" in report
        assert "observability events" in report
